#include "events/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/errno_string.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"

namespace damocles::events {

namespace {

constexpr char kWalMagic[8] = {'D', 'M', 'W', 'A', 'L', '1', '\n', '\0'};
constexpr uint32_t kWalFormatVersion = 1;
constexpr size_t kWalHeaderSize = 36;
constexpr size_t kWalFrameOverhead = 9;  // u32 length + u8 type + u32 crc.
constexpr uint32_t kMaxRecordPayload = 64u << 20;
// journal_symbol_cache_ sentinel: journal id not yet interned here.
constexpr uint32_t kNoCachedSymbol = UINT32_MAX;

/// Writer-owned buffer threshold: appended frames accumulate here and
/// are handed to the OS in one write() once the threshold is crossed
/// (or at an explicit Flush/Sync).
constexpr size_t kWalWriteBufferBytes = 64u << 10;

// --- Little-endian encode / decode helpers ---------------------------------

void PutU32(unsigned char* out, uint32_t value) noexcept {
  out[0] = static_cast<unsigned char>(value);
  out[1] = static_cast<unsigned char>(value >> 8);
  out[2] = static_cast<unsigned char>(value >> 16);
  out[3] = static_cast<unsigned char>(value >> 24);
}

void PutU64(unsigned char* out, uint64_t value) noexcept {
  PutU32(out, static_cast<uint32_t>(value));
  PutU32(out + 4, static_cast<uint32_t>(value >> 32));
}

uint32_t GetU32(const unsigned char* in) noexcept {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

uint64_t GetU64(const unsigned char* in) noexcept {
  return static_cast<uint64_t>(GetU32(in)) |
         (static_cast<uint64_t>(GetU32(in + 4)) << 32);
}

void AppendU8(std::string& out, uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void AppendU32(std::string& out, uint32_t value) {
  unsigned char buf[4];
  PutU32(buf, value);
  out.append(reinterpret_cast<const char*>(buf), 4);
}

void AppendU64(std::string& out, uint64_t value) {
  unsigned char buf[8];
  PutU64(buf, value);
  out.append(reinterpret_cast<const char*>(buf), 8);
}

void AppendI32(std::string& out, int32_t value) {
  AppendU32(out, static_cast<uint32_t>(value));
}

void AppendI64(std::string& out, int64_t value) {
  AppendU64(out, static_cast<uint64_t>(value));
}

void AppendString(std::string& out, std::string_view text) {
  AppendU32(out, static_cast<uint32_t>(text.size()));
  out.append(text);
}

/// Bounds-checked cursor over a record payload. Throws WireFormatError
/// on underrun so every malformed payload surfaces as a torn record.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    Need(1);
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint16_t U16() {
    Need(2);
    const uint16_t value =
        static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_]) |
                              (static_cast<uint8_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return value;
  }

  uint32_t U32() {
    Need(4);
    const uint32_t value =
        GetU32(reinterpret_cast<const unsigned char*>(data_.data()) + pos_);
    pos_ += 4;
    return value;
  }

  uint64_t U64() {
    Need(8);
    const uint64_t value =
        GetU64(reinterpret_cast<const unsigned char*>(data_.data()) + pos_);
    pos_ += 8;
    return value;
  }

  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string String() {
    const uint32_t length = U32();
    Need(length);
    std::string text(data_.substr(pos_, length));
    pos_ += length;
    return text;
  }

  bool AtEnd() const noexcept { return pos_ == data_.size(); }

  void ExpectEnd() const {
    if (!AtEnd()) {
      throw WireFormatError("wal: trailing bytes in record payload");
    }
  }

 private:
  void Need(size_t n) const {
    if (data_.size() - pos_ < n) {
      throw WireFormatError("wal: record payload truncated");
    }
  }

  std::string_view data_;
  size_t pos_ = 0;
};

void EncodeOid(std::string& out, const metadb::Oid& oid) {
  AppendString(out, oid.block);
  AppendString(out, oid.view);
  AppendI32(out, oid.version);
}

metadb::Oid DecodeOid(ByteReader& reader) {
  metadb::Oid oid;
  oid.block = reader.String();
  oid.view = reader.String();
  oid.version = reader.I32();
  return oid;
}

EventMessage DecodeEvent(ByteReader& reader) {
  EventMessage event;
  event.name = reader.String();
  event.direction = static_cast<Direction>(reader.U8());
  event.target = DecodeOid(reader);
  event.arg = reader.String();
  event.user = reader.String();
  event.timestamp = reader.I64();
  event.origin = static_cast<EventOrigin>(reader.U8());
  const uint16_t extras = reader.U16();
  event.extra_args.reserve(extras);
  for (uint16_t i = 0; i < extras; ++i) {
    event.extra_args.push_back(reader.String());
  }
  return event;
}

/// Reads a whole file into `out`. Returns false (with `error` set) on
/// any I/O failure.
bool ReadFileBytes(const std::string& path, std::string& out,
                   std::string& error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::array<char, 1u << 16> buffer;
  out.clear();
  size_t got = 0;
  while ((got = std::fread(buffer.data(), 1, buffer.size(), file)) > 0) {
    out.append(buffer.data(), got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    error = "read error on " + path;
    return false;
  }
  return true;
}

/// Parses a segment header into `info`. Returns false with info.error
/// set when the header is short, mismatched or CRC-corrupt.
bool ParseSegmentHeader(const std::string& bytes, WalSegmentInfo& info) {
  if (bytes.size() < kWalHeaderSize) {
    info.error = "short header (" + std::to_string(bytes.size()) + " of " +
                 std::to_string(kWalHeaderSize) + " bytes)";
    return false;
  }
  const unsigned char* buf =
      reinterpret_cast<const unsigned char*>(bytes.data());
  if (std::memcmp(buf, kWalMagic, sizeof kWalMagic) != 0) {
    info.error = "bad magic";
    return false;
  }
  const uint32_t stored_crc = GetU32(buf + 32);
  if (Crc32(buf, 32) != stored_crc) {
    info.error = "header CRC mismatch";
    return false;
  }
  info.version = GetU32(buf + 8);
  info.shard_id = GetU32(buf + 12);
  info.base_offset = GetU64(buf + 16);
  info.epoch_floor = GetU64(buf + 24);
  if (info.version != kWalFormatVersion) {
    info.error = "unsupported format version " + std::to_string(info.version);
    return false;
  }
  info.header_valid = true;
  return true;
}

/// Segment files of `stream` in `dir`, sorted by index.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir, const std::string& stream) {
  namespace fs = std::filesystem;
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  const std::string prefix = stream + "-";
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, prefix) || !EndsWith(name, ".wal")) continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

// --- CRC32 -----------------------------------------------------------------

uint32_t Crc32(const void* data, size_t size, uint32_t seed) noexcept {
  // Slicing-by-8: tables[t][b] is the CRC of byte b followed by t zero
  // bytes, so eight input bytes fold in one step. Output is identical
  // to the classic byte-at-a-time form (which the tail loop still is).
  static const std::array<std::array<uint32_t, 256>, 8> kTables = [] {
    std::array<std::array<uint32_t, 256>, 8> tables{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      tables[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = tables[0][i];
      for (size_t t = 1; t < 8; ++t) {
        crc = (crc >> 8) ^ tables[0][crc & 0xFFu];
        tables[t][i] = crc;
      }
    }
    return tables;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    crc ^= GetU32(bytes);
    const uint32_t next = GetU32(bytes + 4);
    crc = kTables[7][crc & 0xFFu] ^ kTables[6][(crc >> 8) & 0xFFu] ^
          kTables[5][(crc >> 16) & 0xFFu] ^ kTables[4][crc >> 24] ^
          kTables[3][next & 0xFFu] ^ kTables[2][(next >> 8) & 0xFFu] ^
          kTables[1][(next >> 16) & 0xFFu] ^ kTables[0][next >> 24];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- Enums -----------------------------------------------------------------

bool IsWalOpType(WalRecordType type) noexcept {
  return (static_cast<uint8_t>(type) & 0x10u) != 0;
}

const char* FsyncPolicyName(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
  }
  return "?";
}

FsyncPolicy ParseFsyncPolicy(std::string_view text) {
  if (text == "none") return FsyncPolicy::kNone;
  if (text == "batch") return FsyncPolicy::kBatch;
  if (text == "every_record") return FsyncPolicy::kEveryRecord;
  throw WireFormatError("unknown fsync policy '" + std::string(text) +
                        "' (expected none|batch|every_record)");
}

// --- Operation records -----------------------------------------------------

namespace {

// Shared payload encoders: EncodeWalOp and the writer's zero-copy
// Append*Op paths go through the same functions so the two can never
// drift apart.

// The event and check-in payloads are the per-operation hot path, so
// they are encoded with one buffer grow and raw pointer stores instead
// of a string-append call per field. Byte-identical to the Append*
// form the cold payloads below still use.

/// Extends `out` by `n` bytes and returns a pointer to the new region.
unsigned char* GrowBuffer(std::string& out, size_t n) {
  const size_t old = out.size();
  out.resize(old + n);
  return reinterpret_cast<unsigned char*>(out.data()) + old;
}

unsigned char* PutString(unsigned char* p, std::string_view text) {
  PutU32(p, static_cast<uint32_t>(text.size()));
  std::memcpy(p + 4, text.data(), text.size());
  return p + 4 + text.size();
}

void EncodeEventPayload(std::string& out, uint64_t op_seq,
                        const EventMessage& event) {
  if (event.extra_args.size() > 0xFFFF) {
    throw Error("wal: more than 65535 extra args on event '" + event.name +
                "'");
  }
  size_t size = 8 + 4 + event.name.size() + 1 + 4 +
                event.target.block.size() + 4 + event.target.view.size() + 4 +
                4 + event.arg.size() + 4 + event.user.size() + 8 + 1 + 2;
  for (const std::string& extra : event.extra_args) {
    size += 4 + extra.size();
  }
  unsigned char* p = GrowBuffer(out, size);
  PutU64(p, op_seq);
  p = PutString(p + 8, event.name);
  *p++ = static_cast<unsigned char>(event.direction);
  p = PutString(p, event.target.block);
  p = PutString(p, event.target.view);
  PutU32(p, static_cast<uint32_t>(event.target.version));
  p = PutString(p + 4, event.arg);
  p = PutString(p, event.user);
  PutU64(p, static_cast<uint64_t>(event.timestamp));
  p += 8;
  *p++ = static_cast<unsigned char>(event.origin);
  *p++ = static_cast<unsigned char>(event.extra_args.size() & 0xFF);
  *p++ = static_cast<unsigned char>(event.extra_args.size() >> 8);
  for (const std::string& extra : event.extra_args) {
    p = PutString(p, extra);
  }
}

void EncodeCheckInPayload(std::string& out, uint64_t op_seq,
                          std::string_view block, std::string_view view,
                          std::string_view content, std::string_view user) {
  unsigned char* p =
      GrowBuffer(out, 8 + 16 + block.size() + view.size() + content.size() +
                          user.size());
  PutU64(p, op_seq);
  p = PutString(p + 8, block);
  p = PutString(p, view);
  p = PutString(p, content);
  PutString(p, user);
}

void EncodeLinkPayload(std::string& out, uint64_t op_seq, uint8_t link_kind,
                       const metadb::Oid& from, const metadb::Oid& to) {
  AppendU64(out, op_seq);
  AppendU8(out, link_kind);
  EncodeOid(out, from);
  EncodeOid(out, to);
}

void EncodeBlueprintPayload(std::string& out, uint64_t op_seq,
                            std::string_view text) {
  AppendU64(out, op_seq);
  AppendString(out, text);
}

void EncodeClockPayload(std::string& out, uint64_t op_seq, int64_t seconds) {
  AppendU64(out, op_seq);
  AppendI64(out, seconds);
}

void EncodePolicyProposePayload(std::string& out, uint64_t op_seq,
                                std::string_view text,
                                std::string_view author,
                                std::string_view message) {
  AppendU64(out, op_seq);
  AppendString(out, text);
  AppendString(out, author);
  AppendString(out, message);
}

void EncodePolicyVersionPayload(std::string& out, uint64_t op_seq,
                                uint64_t policy_version) {
  AppendU64(out, op_seq);
  AppendU64(out, policy_version);
}

void EncodePolicyRollbackPayload(std::string& out, uint64_t op_seq) {
  AppendU64(out, op_seq);
}

}  // namespace

std::string EncodeWalOp(const WalOpRecord& op) {
  std::string payload;
  switch (op.type) {
    case WalRecordType::kOpEvent:
      EncodeEventPayload(payload, op.op_seq, op.event);
      break;
    case WalRecordType::kOpCheckIn:
      EncodeCheckInPayload(payload, op.op_seq, op.block, op.view, op.content,
                           op.user);
      break;
    case WalRecordType::kOpLink:
      EncodeLinkPayload(payload, op.op_seq, op.link_kind, op.link_from,
                        op.link_to);
      break;
    case WalRecordType::kOpBlueprint:
      EncodeBlueprintPayload(payload, op.op_seq, op.text);
      break;
    case WalRecordType::kOpClock:
      EncodeClockPayload(payload, op.op_seq, op.clock_seconds);
      break;
    case WalRecordType::kOpPolicyPropose:
      EncodePolicyProposePayload(payload, op.op_seq, op.text, op.user,
                                 op.content);
      break;
    case WalRecordType::kOpPolicyValidate:
    case WalRecordType::kOpPolicyPromote:
      EncodePolicyVersionPayload(payload, op.op_seq, op.policy_version);
      break;
    case WalRecordType::kOpPolicyRollback:
      EncodePolicyRollbackPayload(payload, op.op_seq);
      break;
    default:
      throw Error("EncodeWalOp: record type " +
                  std::to_string(static_cast<int>(op.type)) +
                  " is not an operation");
  }
  return payload;
}

WalOpRecord DecodeWalOp(WalRecordType type, std::string_view payload) {
  WalOpRecord op;
  op.type = type;
  ByteReader reader(payload);
  op.op_seq = reader.U64();
  switch (type) {
    case WalRecordType::kOpEvent:
      op.event = DecodeEvent(reader);
      break;
    case WalRecordType::kOpCheckIn:
      op.block = reader.String();
      op.view = reader.String();
      op.content = reader.String();
      op.user = reader.String();
      break;
    case WalRecordType::kOpLink:
      op.link_kind = reader.U8();
      op.link_from = DecodeOid(reader);
      op.link_to = DecodeOid(reader);
      break;
    case WalRecordType::kOpBlueprint:
      op.text = reader.String();
      break;
    case WalRecordType::kOpClock:
      op.clock_seconds = reader.I64();
      break;
    case WalRecordType::kOpPolicyPropose:
      op.text = reader.String();
      op.user = reader.String();
      op.content = reader.String();
      break;
    case WalRecordType::kOpPolicyValidate:
    case WalRecordType::kOpPolicyPromote:
      op.policy_version = reader.U64();
      break;
    case WalRecordType::kOpPolicyRollback:
      break;
    default:
      throw WireFormatError("DecodeWalOp: record type " +
                            std::to_string(static_cast<int>(type)) +
                            " is not an operation");
  }
  reader.ExpectEnd();
  return op;
}

// --- Writer ----------------------------------------------------------------

WalWriter::WalWriter(WalWriterOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) throw Error("wal: empty directory");
  if (options_.stream.empty()) throw Error("wal: empty stream name");
  // Continue where the stream left off: a brand-new segment right after
  // the last one on disk, so this writer's symbol table starts fresh.
  const auto segments = ListSegments(options_.dir, options_.stream);
  if (!segments.empty()) {
    const auto& [last_index, last_path] = segments.back();
    std::string bytes;
    std::string io_error;
    if (!ReadFileBytes(last_path, bytes, io_error)) {
      throw Error("wal: cannot continue stream '" + options_.stream +
                  "': " + io_error);
    }
    WalSegmentInfo info;
    if (!ParseSegmentHeader(bytes, info)) {
      throw Error("wal: cannot continue stream '" + options_.stream + "': " +
                  last_path + ": " + info.error);
    }
    segment_index_ = last_index + 1;
    base_offset_ = info.base_offset + bytes.size();
  } else {
    segment_index_ = 1;
    base_offset_ = 0;
  }
  OpenSegment();
}

WalWriter::~WalWriter() {
  try {
    CloseSegment();
  } catch (const Error&) {
    // Destructors must not throw; a failed final flush surfaces as a
    // torn tail on the next recovery, which is exactly what the format
    // is built to absorb.
  }
}

void WalWriter::OpenSegment() {
  path_ = options_.dir + "/" +
          WalSegmentFileName(options_.stream, segment_index_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw WalIoError("wal: cannot create segment " + path_ + ": " +
                     common::ErrnoString(errno));
  }
  write_buffer_.clear();
  write_buffer_.reserve(kWalWriteBufferBytes);
  stream_symbols_.clear();
  journal_symbol_cache_.clear();
  file_bytes_ = 0;
  unsigned char header[kWalHeaderSize];
  std::memcpy(header, kWalMagic, sizeof kWalMagic);
  PutU32(header + 8, kWalFormatVersion);
  PutU32(header + 12, options_.shard_id);
  PutU64(header + 16, base_offset_);
  PutU64(header + 24, options_.epoch_floor ? options_.epoch_floor() : 0);
  PutU32(header + 32, Crc32(header, 32));
  WriteRaw(header, sizeof header);
}

void WalWriter::CloseSegment() {
  if (fd_ < 0) return;
  Flush();
  if (options_.fsync != FsyncPolicy::kNone) {
    ::fsync(fd_);
  }
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::MaybeRoll() {
  if (file_bytes_ < options_.segment_bytes) return;
  common::FailpointHit hit;
  if (DAMOCLES_FAILPOINT("wal.roll", &hit)) {
    throw WalIoError("wal: injected segment-roll failure on stream '" +
                     options_.stream + "' (failpoint wal.roll)");
  }
  // CloseSegment flushes; a failed flush leaves this segment open (with
  // the unwritten tail still buffered) so a retried append can resume.
  CloseSegment();
  base_offset_ += file_bytes_;
  ++segment_index_;
  OpenSegment();
}

void WalWriter::WriteRaw(const void* data, size_t size) {
  write_buffer_.append(static_cast<const char*>(data), size);
  file_bytes_ += size;
  dirty_ = true;
  if (write_buffer_.size() >= kWalWriteBufferBytes) Flush();
}

size_t WalWriter::BeginRecord(WalRecordType type) {
  const size_t mark = write_buffer_.size();
  // Length placeholder (back-patched by EndRecord) + the type byte.
  write_buffer_.append("\0\0\0\0", 4);
  write_buffer_.push_back(static_cast<char>(type));
  return mark;
}

void WalWriter::EndRecord(size_t mark) {
  const size_t payload_size = write_buffer_.size() - mark - 5;
  if (payload_size > kMaxRecordPayload) {
    throw Error("wal: record payload exceeds " +
                std::to_string(kMaxRecordPayload) + " bytes");
  }
  PutU32(reinterpret_cast<unsigned char*>(write_buffer_.data() + mark),
         static_cast<uint32_t>(payload_size));
  // Type byte and payload sit contiguously in the buffer: one CRC pass.
  const uint32_t crc = Crc32(write_buffer_.data() + mark + 4,
                             1 + payload_size);
  unsigned char tail[4];
  PutU32(tail, crc);
  write_buffer_.append(reinterpret_cast<const char*>(tail), sizeof tail);
  file_bytes_ += payload_size + kWalFrameOverhead;
  dirty_ = true;
  // Count before the spill check below: the frame is committed to the
  // buffer even when the flush it triggers fails.
  ++frames_appended_;
  // The spill check runs at frame granularity — a mid-record durable
  // extent is exactly the torn tail recovery truncates (the crash fuzz
  // exercises these offsets). Between BeginRecord and EndRecord nothing
  // may flush: the buffer holds an unframed prefix.
  if (write_buffer_.size() >= kWalWriteBufferBytes) Flush();
}

void WalWriter::WriteRecord(WalRecordType type, std::string_view payload) {
  const size_t mark = BeginRecord(type);
  write_buffer_.append(payload.data(), payload.size());
  EndRecord(mark);
}

uint32_t WalWriter::InternStreamSymbol(const std::string& text) {
  const auto it = stream_symbols_.find(text);
  if (it != stream_symbols_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(stream_symbols_.size());
  std::string payload;
  AppendU32(payload, id);
  AppendString(payload, text);
  WriteRecord(WalRecordType::kSymbol, payload);
  stream_symbols_.emplace(text, id);
  return id;
}

uint32_t WalWriter::InternJournalSymbol(const EventJournal& journal,
                                        SymbolId id) {
  if (id >= journal_symbol_cache_.size()) {
    journal_symbol_cache_.resize(id + 1, kNoCachedSymbol);
  }
  uint32_t& slot = journal_symbol_cache_[id];
  if (slot == kNoCachedSymbol) {
    slot = InternStreamSymbol(journal.SymbolText(id));
  }
  return slot;
}

void WalWriter::EndAppendGroup() {
  if (options_.fsync == FsyncPolicy::kEveryRecord) Sync();
}

void WalWriter::CheckAppendFailpoint() {
  common::FailpointHit hit;
  if (DAMOCLES_FAILPOINT("wal.append", &hit)) {
    throw WalIoError("wal: injected append failure on stream '" +
                     options_.stream + "' (failpoint wal.append)");
  }
}

void WalWriter::OnAppend(const EventJournal& journal) {
  // Fail-soft: this runs as a JournalSink inside engine worker threads,
  // where a throw would be fatal. After the first failure later rows
  // are dropped (the mirror is incomplete either way); the server heals
  // by truncating to the CRC-valid prefix and re-checkpointing, which
  // never re-reads the dropped region.
  if (!failure_.empty()) return;
  try {
    AppendRowOrThrow(journal);
  } catch (const Error& error) {
    failure_ = error.what();
  }
}

// Throwing body of OnAppend; only the fail-soft wrapper above calls it.
void WalWriter::AppendRowOrThrow(const EventJournal& journal) {
  CheckAppendFailpoint();
  MaybeRoll();
  AppendRowAt(journal, journal.Size() - 1);
  EndAppendGroup();
}

void WalWriter::AppendRowAt(const EventJournal& journal, size_t index) {
  const EventJournal::Row& row = journal.RawRow(index);
  // Intern every symbol before the row frame opens: a first-sight
  // symbol emits its own kSymbol record, which must precede the row's
  // frame in the stream (the encode below then only hits the cache).
  const uint32_t name = InternJournalSymbol(journal, row.name);
  const uint32_t block = InternJournalSymbol(journal, row.block);
  const uint32_t view = InternJournalSymbol(journal, row.view);
  const uint32_t arg = InternJournalSymbol(journal, row.arg);
  const uint32_t user = InternJournalSymbol(journal, row.user);
  for (uint16_t i = 0; i < row.extra_count; ++i) {
    InternJournalSymbol(journal, journal.ExtraPoolAt(row.extra_begin + i));
  }
  const size_t mark = BeginRecord(WalRecordType::kRow);
  unsigned char* p =
      GrowBuffer(write_buffer_, 44 + 4 * size_t{row.extra_count});
  PutU32(p, name);
  PutU32(p + 4, block);
  PutU32(p + 8, view);
  PutU32(p + 12, arg);
  PutU32(p + 16, user);
  PutU32(p + 20, static_cast<uint32_t>(row.version));
  PutU64(p + 24, static_cast<uint64_t>(row.timestamp));
  PutU64(p + 32, row.epoch);
  p[40] = row.direction;
  p[41] = row.origin;
  p[42] = static_cast<unsigned char>(row.extra_count & 0xFF);
  p[43] = static_cast<unsigned char>(row.extra_count >> 8);
  p += 44;
  for (uint16_t i = 0; i < row.extra_count; ++i) {
    const SymbolId extra = journal.ExtraPoolAt(row.extra_begin + i);
    PutU32(p, InternJournalSymbol(journal, extra));
    p += 4;
  }
  EndRecord(mark);
}

void WalWriter::MirrorJournal(const EventJournal& journal) {
  try {
    CheckAppendFailpoint();
    MaybeRoll();
    WriteRecord(WalRecordType::kReset, {});
    last_reset_end_ = logical_end();
    // Recovery only restores rows past the reset, so the mirror below
    // is the stream's whole visible content regardless of what the
    // truncated prefix held.
    journal_symbol_cache_.clear();
    for (size_t i = 0; i < journal.Size(); ++i) {
      MaybeRoll();
      AppendRowAt(journal, i);
    }
    EndAppendGroup();
    // The stream covers the complete journal again; the fail-soft sink
    // path resumes appending from here.
    failure_.clear();
  } catch (const Error& error) {
    // A partial mirror (reset + some rows) must keep dropping later
    // sink appends — recovery would otherwise restore a gapped row
    // sequence.
    failure_ = error.what();
    throw;
  }
}

void WalWriter::OnClear(const EventJournal& /*journal*/) {
  if (!failure_.empty()) return;
  try {
    CheckAppendFailpoint();
    MaybeRoll();
    WriteRecord(WalRecordType::kReset, {});
    last_reset_end_ = logical_end();
    EndAppendGroup();
  } catch (const Error& error) {
    failure_ = error.what();
  }
  // The journal rebuilt its symbol table from scratch; cached ids no
  // longer name the same text.
  journal_symbol_cache_.clear();
}

void WalWriter::AppendOp(const WalOpRecord& op) {
  CheckAppendFailpoint();
  MaybeRoll();
  WriteRecord(op.type, EncodeWalOp(op));
  EndAppendGroup();
}

void WalWriter::AppendCheckInOp(uint64_t op_seq, std::string_view block,
                                std::string_view view,
                                std::string_view content,
                                std::string_view user) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpCheckIn);
  EncodeCheckInPayload(write_buffer_, op_seq, block, view, content, user);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendEventOp(uint64_t op_seq, const EventMessage& event) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpEvent);
  try {
    EncodeEventPayload(write_buffer_, op_seq, event);
  } catch (...) {
    // Drop the half-open frame so the stream stays well-formed.
    write_buffer_.resize(mark);
    throw;
  }
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendLinkOp(uint64_t op_seq, uint8_t link_kind,
                             const metadb::Oid& from, const metadb::Oid& to) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpLink);
  EncodeLinkPayload(write_buffer_, op_seq, link_kind, from, to);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendBlueprintOp(uint64_t op_seq, std::string_view text) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpBlueprint);
  EncodeBlueprintPayload(write_buffer_, op_seq, text);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendClockOp(uint64_t op_seq, int64_t clock_seconds) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpClock);
  EncodeClockPayload(write_buffer_, op_seq, clock_seconds);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendPolicyProposeOp(uint64_t op_seq, std::string_view text,
                                      std::string_view author,
                                      std::string_view message) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpPolicyPropose);
  EncodePolicyProposePayload(write_buffer_, op_seq, text, author, message);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendPolicyVersionOp(WalRecordType type, uint64_t op_seq,
                                      uint64_t policy_version) {
  if (type != WalRecordType::kOpPolicyValidate &&
      type != WalRecordType::kOpPolicyPromote) {
    throw Error("AppendPolicyVersionOp: record type " +
                std::to_string(static_cast<int>(type)) +
                " carries no version id");
  }
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(type);
  EncodePolicyVersionPayload(write_buffer_, op_seq, policy_version);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::AppendPolicyRollbackOp(uint64_t op_seq) {
  CheckAppendFailpoint();
  MaybeRoll();
  const size_t mark = BeginRecord(WalRecordType::kOpPolicyRollback);
  EncodePolicyRollbackPayload(write_buffer_, op_seq);
  EndRecord(mark);
  EndAppendGroup();
}

void WalWriter::Flush() {
  if (fd_ < 0 || !dirty_) return;
  // "wal.flush" failpoint: fail outright (error / errno), or tear the
  // write — only `short:<n>` bytes reach the file before the failure,
  // exactly what a disk filling up mid-write leaves behind.
  bool inject_fail = false;
  int inject_errno = EIO;
  size_t inject_cap = 0;
  common::FailpointHit hit;
  if (DAMOCLES_FAILPOINT("wal.flush", &hit)) {
    inject_fail = true;
    if (hit.action == common::FailpointAction::kErrno) {
      inject_errno = hit.error_number;
    }
    if (hit.action == common::FailpointAction::kShortWrite) {
      inject_cap = static_cast<size_t>(hit.param);
    }
  }
  const char* data = write_buffer_.data();
  size_t left = write_buffer_.size();
  size_t written = 0;
  while (left > 0) {
    size_t ask = left;
    if (inject_fail) {
      if (inject_cap <= written) break;
      ask = std::min(ask, inject_cap - written);
    }
    const ssize_t wrote = ::write(fd_, data, ask);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (wrote == 0) break;
    data += wrote;
    left -= static_cast<size_t>(wrote);
    written += static_cast<size_t>(wrote);
  }
  if (left > 0) {
    const int err = inject_fail ? inject_errno : errno;
    // Consume what did reach the file so a retry after backoff starts
    // at the first unwritten byte — re-writing the whole buffer would
    // splice duplicate bytes mid-stream and corrupt every later frame.
    write_buffer_.erase(0, written);
    throw WalIoError("wal: write failed on " + path_ + " after " +
                     std::to_string(written) + " bytes: " +
                     common::ErrnoString(err) +
                     (inject_fail ? " (injected)" : ""));
  }
  write_buffer_.clear();
  dirty_ = false;
  if (options_.observer != nullptr) {
    options_.observer->OnDurableExtent(path_, file_bytes_);
  }
}

void WalWriter::Sync() {
  if (fd_ < 0) return;
  Flush();
  common::FailpointHit hit;
  if (DAMOCLES_FAILPOINT("wal.fsync", &hit)) {
    const int err = hit.action == common::FailpointAction::kErrno
                        ? hit.error_number
                        : EIO;
    throw WalIoError("wal: fsync failed on " + path_ + ": " +
                     common::ErrnoString(err) + " (injected)");
  }
  if (::fsync(fd_) != 0) {
    throw WalIoError("wal: fsync failed on " + path_ + ": " +
                     common::ErrnoString(errno));
  }
}

// --- Reader ----------------------------------------------------------------

std::string WalSegmentFileName(const std::string& stream, uint64_t index) {
  std::string digits = std::to_string(index);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return stream + "-" + digits + ".wal";
}

std::vector<std::string> ListWalStreams(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> streams;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!EndsWith(name, ".wal")) continue;
    const std::string stem = name.substr(0, name.size() - 4);
    const size_t dash = stem.rfind('-');
    if (dash == std::string::npos || dash == 0) continue;
    const std::string digits = stem.substr(dash + 1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    streams.push_back(stem.substr(0, dash));
  }
  std::sort(streams.begin(), streams.end());
  streams.erase(std::unique(streams.begin(), streams.end()), streams.end());
  return streams;
}

WalStreamData ReadWalStream(const std::string& dir, const std::string& stream) {
  WalStreamData data;
  const auto segments = ListSegments(dir, stream);
  bool stopped = false;
  std::vector<std::string> symbols;  // Segment-local, dense from 0.

  for (size_t seg = 0; seg < segments.size(); ++seg) {
    const auto& [index, path] = segments[seg];
    WalSegmentInfo info;
    info.path = path;
    info.index = index;

    std::string bytes;
    std::string io_error;
    const bool read_ok = ReadFileBytes(path, bytes, io_error);
    info.file_bytes = bytes.size();

    if (stopped) {
      if (read_ok) ParseSegmentHeader(bytes, info);
      info.error = "unreachable (stream torn in an earlier segment)";
      data.segments.push_back(std::move(info));
      continue;
    }

    if (!read_ok || !ParseSegmentHeader(bytes, info)) {
      if (!read_ok) info.error = io_error;
      data.torn = true;
      data.error = path + ": " + info.error;
      data.segments.push_back(std::move(info));
      stopped = true;
      continue;
    }

    if (seg == 0) {
      data.valid_end = info.base_offset;
    } else if (info.base_offset > data.valid_end) {
      // Forward gap: the segments below this one were (partially)
      // pruned — a retention pass interrupted mid-prune can persist a
      // later unlink without the earlier ones. Everything below the gap
      // is an orphaned prefix of data the committed checkpoint already
      // covers; drop what was collected and restart at this segment,
      // exactly as if the whole prefix had been pruned.
      data.rows.clear();
      data.resets.clear();
      data.ops.clear();
      for (WalSegmentInfo& prior : data.segments) {
        if (prior.error.empty()) {
          prior.error = "orphaned prefix (pruned gap below segment " +
                        std::to_string(index) + ")";
        }
      }
      data.valid_end = info.base_offset;
    } else if (info.base_offset != data.valid_end) {
      info.torn = true;
      info.error = "base offset discontinuity (header says " +
                   std::to_string(info.base_offset) + ", stream ends at " +
                   std::to_string(data.valid_end) + ")";
      data.torn = true;
      data.error = path + ": " + info.error;
      data.segments.push_back(std::move(info));
      stopped = true;
      continue;
    }

    symbols.clear();  // Fresh table per segment, mirroring the writer.
    size_t pos = kWalHeaderSize;
    std::string torn_reason;
    while (pos < bytes.size()) {
      if (bytes.size() - pos < kWalFrameOverhead) {
        torn_reason = "short frame";
        break;
      }
      const unsigned char* frame =
          reinterpret_cast<const unsigned char*>(bytes.data()) + pos;
      const uint32_t length = GetU32(frame);
      if (length > kMaxRecordPayload) {
        torn_reason = "implausible record length";
        break;
      }
      if (bytes.size() - pos < kWalFrameOverhead + length) {
        torn_reason = "short record";
        break;
      }
      const uint32_t stored_crc = GetU32(frame + 5 + length);
      if (Crc32(frame + 4, 1 + length) != stored_crc) {
        torn_reason = "record CRC mismatch";
        break;
      }
      const auto type = static_cast<WalRecordType>(frame[4]);
      const std::string_view payload(bytes.data() + pos + 5, length);
      const uint64_t end_offset =
          info.base_offset + pos + kWalFrameOverhead + length;
      try {
        if (type == WalRecordType::kSymbol) {
          ByteReader reader(payload);
          const uint32_t id = reader.U32();
          std::string text = reader.String();
          reader.ExpectEnd();
          if (id != symbols.size()) {
            torn_reason = "symbol id out of order";
            break;
          }
          symbols.push_back(std::move(text));
          ++info.symbols;
        } else if (type == WalRecordType::kRow) {
          ByteReader reader(payload);
          uint32_t ids[5];
          for (uint32_t& id : ids) {
            id = reader.U32();
            if (id >= symbols.size()) {
              throw WireFormatError("wal: row references unknown symbol");
            }
          }
          WalRestoredRow restored;
          restored.event.name = symbols[ids[0]];
          restored.event.target.block = symbols[ids[1]];
          restored.event.target.view = symbols[ids[2]];
          restored.event.arg = symbols[ids[3]];
          restored.event.user = symbols[ids[4]];
          restored.event.target.version = reader.I32();
          restored.event.timestamp = reader.I64();
          restored.event.wave_epoch = reader.U64();
          restored.event.direction = static_cast<Direction>(reader.U8());
          restored.event.origin = static_cast<EventOrigin>(reader.U8());
          const uint16_t extras = reader.U16();
          restored.event.extra_args.reserve(extras);
          for (uint16_t i = 0; i < extras; ++i) {
            const uint32_t id = reader.U32();
            if (id >= symbols.size()) {
              throw WireFormatError("wal: row references unknown symbol");
            }
            restored.event.extra_args.push_back(symbols[id]);
          }
          reader.ExpectEnd();
          restored.end_offset = end_offset;
          data.rows.push_back(std::move(restored));
        } else if (type == WalRecordType::kReset) {
          if (!payload.empty()) {
            throw WireFormatError("wal: reset record carries a payload");
          }
          data.resets.push_back(end_offset);
        } else if (IsWalOpType(type)) {
          WalOpEntry entry;
          entry.op = DecodeWalOp(type, payload);
          entry.end_offset = end_offset;
          data.ops.push_back(std::move(entry));
        } else {
          throw WireFormatError("wal: unknown record type " +
                                std::to_string(frame[4]));
        }
      } catch (const WireFormatError& e) {
        torn_reason = e.what();
        break;
      }
      pos += kWalFrameOverhead + length;
      ++info.records;
    }

    info.valid_bytes = pos;
    data.valid_end = info.base_offset + pos;
    if (!torn_reason.empty()) {
      info.torn = true;
      info.error = torn_reason + " at offset " + std::to_string(pos);
      data.torn = true;
      data.error = path + ": " + info.error;
      stopped = true;
    }
    data.segments.push_back(std::move(info));
  }
  return data;
}

void TruncateWalStream(const std::string& dir, const std::string& stream,
                       uint64_t logical_offset, size_t* failed_removals) {
  namespace fs = std::filesystem;
  const auto segments = ListSegments(dir, stream);
  bool delete_rest = false;
  const auto remove_counted = [failed_removals](const std::string& path) {
    std::error_code ec;
    fs::remove(path, ec);
    if (ec && failed_removals != nullptr) ++*failed_removals;
  };
  for (const auto& [index, path] : segments) {
    if (delete_rest) {
      remove_counted(path);
      continue;
    }
    std::string bytes;
    std::string io_error;
    WalSegmentInfo info;
    if (!ReadFileBytes(path, bytes, io_error) ||
        !ParseSegmentHeader(bytes, info)) {
      // Unreadable header: nothing past this point is recoverable.
      remove_counted(path);
      delete_rest = true;
      continue;
    }
    const uint64_t end = info.base_offset + bytes.size();
    if (info.base_offset >= logical_offset) {
      remove_counted(path);
      delete_rest = true;
    } else if (end > logical_offset) {
      const uint64_t keep = logical_offset - info.base_offset;
      if (keep < kWalHeaderSize) {
        remove_counted(path);
      } else {
        std::error_code ec;
        fs::resize_file(path, keep, ec);
        if (ec) {
          throw Error("wal: cannot truncate " + path + ": " + ec.message());
        }
      }
      delete_rest = true;
    }
  }
}

WalPruneStats PruneWalSegments(const std::string& dir,
                               const std::string& stream,
                               uint64_t floor_offset, int retain_segments) {
  namespace fs = std::filesystem;
  WalPruneStats stats;
  if (retain_segments < 0) return stats;  // Retention disabled.
  const auto segments = ListSegments(dir, stream);
  if (segments.size() <= 1) return stats;  // Never touch the newest segment.

  // The prunable prefix: consecutive leading segments wholly below the
  // committed floor. Stop at the first segment recovery might need.
  std::vector<std::pair<std::string, uint64_t>> prunable;  // (path, bytes)
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    const auto& [index, path] = segments[i];
    std::string bytes;
    std::string io_error;
    WalSegmentInfo info;
    if (!ReadFileBytes(path, bytes, io_error) ||
        !ParseSegmentHeader(bytes, info)) {
      break;  // Unreadable header: leave it for recovery to judge.
    }
    if (info.base_offset + bytes.size() > floor_offset) break;
    prunable.emplace_back(path, bytes.size());
  }
  if (prunable.size() <= static_cast<size_t>(retain_segments)) return stats;

  // Oldest first, so an interrupted prune leaves a removed prefix plus
  // a contiguous remainder (never a mid-chain hole).
  const size_t remove_count =
      prunable.size() - static_cast<size_t>(retain_segments);
  for (size_t i = 0; i < remove_count; ++i) {
    std::error_code ec;
    common::FailpointHit hit;
    if (DAMOCLES_FAILPOINT("wal.prune", &hit)) {
      throw WalIoError("wal: prune failed on " + prunable[i].first +
                       ": injected failure (failpoint wal.prune)");
    }
    if (fs::remove(prunable[i].first, ec)) {
      ++stats.segments_removed;
      stats.bytes_removed += prunable[i].second;
    } else if (ec) {
      ++stats.failed_removals;
    }
  }
  return stats;
}

WalPruneStats RemoveOrphanedWalPrefix(const std::string& dir,
                                      const std::string& stream) {
  namespace fs = std::filesystem;
  WalPruneStats stats;
  const auto segments = ListSegments(dir, stream);
  if (segments.size() <= 1) return stats;

  // Find the last forward gap in the chain; everything below it is the
  // orphaned prefix ReadWalStream's gap handling already skips.
  size_t first_reachable = 0;
  uint64_t expected_end = 0;
  bool have_end = false;
  std::vector<uint64_t> sizes(segments.size(), 0);
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [index, path] = segments[i];
    std::string bytes;
    std::string io_error;
    WalSegmentInfo info;
    if (!ReadFileBytes(path, bytes, io_error) ||
        !ParseSegmentHeader(bytes, info)) {
      break;  // Torn tail territory: recovery's truncation owns it.
    }
    sizes[i] = bytes.size();
    if (have_end && info.base_offset > expected_end) first_reachable = i;
    expected_end = info.base_offset + bytes.size();
    have_end = true;
  }
  for (size_t i = 0; i < first_reachable; ++i) {
    std::error_code ec;
    if (fs::remove(segments[i].second, ec)) {
      ++stats.segments_removed;
      stats.bytes_removed += sizes[i];
    } else if (ec) {
      ++stats.failed_removals;
    }
  }
  return stats;
}

std::string FormatWalInspection(const std::string& dir, bool* any_torn) {
  if (any_torn != nullptr) *any_torn = false;
  std::string out = "wal directory: " + dir + "\n";
  const std::vector<std::string> streams = ListWalStreams(dir);
  if (streams.empty()) {
    out += "  (no streams)\n";
    return out;
  }
  for (const std::string& stream : streams) {
    const WalStreamData data = ReadWalStream(dir, stream);
    if (data.torn && any_torn != nullptr) *any_torn = true;
    out += "stream \"" + stream + "\": " +
           std::to_string(data.segments.size()) +
           " segment(s), valid through offset " +
           std::to_string(data.valid_end);
    out += data.torn ? " (TORN)\n" : "\n";
    for (const WalSegmentInfo& info : data.segments) {
      out += "  " + std::filesystem::path(info.path).filename().string() + ": ";
      if (!info.header_valid) {
        out += "INVALID HEADER (" + info.error + ")\n";
        continue;
      }
      out += "v" + std::to_string(info.version) + " shard " +
             std::to_string(info.shard_id) + " base " +
             std::to_string(info.base_offset) + " epoch-floor " +
             std::to_string(info.epoch_floor) + ", " +
             std::to_string(info.valid_bytes) + "/" +
             std::to_string(info.file_bytes) + " bytes, " +
             std::to_string(info.records) + " record(s), " +
             std::to_string(info.symbols) + " symbol(s)";
      if (info.torn) {
        // The physical offset where the intact prefix ends — the torn
        // tail begins at this byte of the segment file.
        out += " — TORN: " + info.error + " (torn tail at byte " +
               std::to_string(info.valid_bytes) + ")";
      } else if (!info.error.empty()) {
        out += " — " + info.error;
      } else {
        out += " — ok";
      }
      out += "\n";
    }
    out += "  rows " + std::to_string(data.rows.size()) + ", resets " +
           std::to_string(data.resets.size()) + ", ops " +
           std::to_string(data.ops.size()) + "\n";
  }
  return out;
}

namespace {

/// Minimal JSON string escaper — stream names and error messages only
/// contain text we generate, but a hostile segment error must not break
/// the document.
std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

const char* JsonBool(bool value) { return value ? "true" : "false"; }

}  // namespace

std::string FormatWalInspectionJson(const std::string& dir, bool* any_torn) {
  bool torn_somewhere = false;
  std::string out = "{\"dir\": " + JsonQuote(dir) + ", \"streams\": [";
  const std::vector<std::string> streams = ListWalStreams(dir);
  for (size_t s = 0; s < streams.size(); ++s) {
    const WalStreamData data = ReadWalStream(dir, streams[s]);
    if (data.torn) torn_somewhere = true;
    if (s != 0) out += ", ";
    out += "{\"name\": " + JsonQuote(streams[s]) +
           ", \"valid_end\": " + std::to_string(data.valid_end) +
           ", \"torn\": " + JsonBool(data.torn) +
           ", \"error\": " + JsonQuote(data.error) +
           ", \"rows\": " + std::to_string(data.rows.size()) +
           ", \"resets\": " + std::to_string(data.resets.size()) +
           ", \"ops\": " + std::to_string(data.ops.size()) +
           ", \"segments\": [";
    for (size_t i = 0; i < data.segments.size(); ++i) {
      const WalSegmentInfo& info = data.segments[i];
      if (i != 0) out += ", ";
      out += "{\"file\": " +
             JsonQuote(std::filesystem::path(info.path).filename().string()) +
             ", \"index\": " + std::to_string(info.index) +
             ", \"version\": " + std::to_string(info.version) +
             ", \"shard\": " + std::to_string(info.shard_id) +
             ", \"base_offset\": " + std::to_string(info.base_offset) +
             ", \"epoch_floor\": " + std::to_string(info.epoch_floor) +
             ", \"file_bytes\": " + std::to_string(info.file_bytes) +
             ", \"valid_bytes\": " + std::to_string(info.valid_bytes) +
             ", \"records\": " + std::to_string(info.records) +
             ", \"symbols\": " + std::to_string(info.symbols) +
             ", \"header_valid\": " + JsonBool(info.header_valid) +
             ", \"torn\": " + JsonBool(info.torn);
      if (info.torn) {
        // Same convention as the text report: the torn tail begins at
        // the first byte past the intact record prefix.
        out += ", \"torn_offset\": " + std::to_string(info.valid_bytes);
      }
      out += ", \"error\": " + JsonQuote(info.error) + "}";
    }
    out += "]}";
  }
  out += "], \"torn\": ";
  out += JsonBool(torn_somewhere);
  out += "}\n";
  if (any_torn != nullptr) *any_torn = torn_somewhere;
  return out;
}

}  // namespace damocles::events
