// Append-only journal of design events.
//
// Keeps the full audit trail the tracking system needs: every event the
// engine processed, in order, with its origin. Supports replay — feeding
// a recorded trace back through a fresh engine must reproduce identical
// meta-data, which the determinism tests rely on.
//
// Storage is allocation-free on the hot path: records are packed
// integer rows whose string fields (event name, target block/view, arg,
// user, extra args) are interned through a journal-owned side table, so
// recording a delivery costs a few transparent string_view hash probes
// and one vector push — no string copies. Propagated deliveries use
// RecordPropagated, which journals the shared wave payload with a
// per-delivery target without ever materializing an EventMessage.
// Accessors (At / ExternalTrace / Dump) rebuild full messages from the
// side table on demand; their output is byte-identical to the
// historical string-storing journal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/symbol.hpp"
#include "events/event.hpp"

namespace damocles::events {

/// One materialized journal record: an event plus its position in
/// processing order.
struct JournalRecord {
  size_t sequence = 0;
  EventMessage event;
};

class EventJournal;

/// Receives journal appends as they happen. The durability layer
/// (events/wal.hpp) attaches one WalWriter per journal to mirror rows
/// into an on-disk write-ahead stream; the journal stays oblivious to
/// how the sink persists them. Called synchronously on the appending
/// thread — the sink inherits the journal's own threading contract
/// (one appender at a time).
class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// One row was appended; `journal.RawRow(journal.Size() - 1)` is the
  /// new row.
  virtual void OnAppend(const EventJournal& journal) = 0;

  /// The journal was cleared (rows, extras and the side table dropped).
  virtual void OnClear(const EventJournal& journal) = 0;
};

/// In-memory audit journal over interned compact rows.
class EventJournal {
 public:
  /// Appends a record; sequence numbers are assigned densely from 0.
  void Record(const EventMessage& event);

  /// Move overload kept for API continuity; interning never steals the
  /// strings, so it simply forwards to the const-ref form.
  void Record(EventMessage&& event) { Record(event); }

  /// Journals one propagated delivery of a shared wave payload:
  /// `event`'s fields with `target` substituted and the origin forced
  /// to kPropagated. The wave hot path calls this once per delivery;
  /// no EventMessage is constructed.
  void RecordPropagated(const EventMessage& event, const metadb::Oid& target);

  /// A wave payload's shared row fields, interned once. The wave engine
  /// builds one key per wave (seed batch) and journals every delivery
  /// through it, so the per-delivery cost drops to interning the target
  /// block/view — the payload's name/arg/user/extra args never re-hash.
  /// Keys index this journal's side table and are invalidated by
  /// Clear(); they are wave-scoped scratch, never stored.
  struct PayloadKey {
    SymbolId name = 0;
    SymbolId arg = 0;
    SymbolId user = 0;
    int64_t timestamp = 0;
    uint64_t epoch = 0;
    uint32_t extra_begin = 0;
    uint16_t extra_count = 0;
    uint8_t direction = 0;
  };

  /// Interns `event`'s shared fields (extra args included) into this
  /// journal and returns the reusable key.
  PayloadKey MakePayloadKey(const EventMessage& event);

  /// Seed-batch row append: journals one propagated delivery of the
  /// payload behind `key` at `target`.
  void RecordPropagated(const PayloadKey& key, const metadb::Oid& target);

  /// Materializes record `index` (bounds-checked; throws NotFoundError).
  JournalRecord At(size_t index) const;

  size_t Size() const noexcept { return rows_.size(); }
  bool Empty() const noexcept { return rows_.empty(); }

  /// Drops all records and the side string table.
  void Clear();

  /// Returns only the externally originated events — the trace to feed a
  /// fresh engine for replay (rule/propagation events are re-derived).
  std::vector<EventMessage> ExternalTrace() const;

  /// Multi-line dump for diagnostics, one record per line.
  std::string Dump() const;

  /// The side string table (gauge: distinct strings across all records).
  const SymbolTable& strings() const noexcept { return strings_; }

  /// One packed record row. 48 bytes vs. the 4 strings + vector an
  /// EventMessage carries; extra args overflow into a shared pool.
  /// Public (read-only, via RawRow) so a JournalSink can mirror appends
  /// without materializing an EventMessage per row.
  struct Row {
    SymbolId name = 0;
    SymbolId block = 0;
    SymbolId view = 0;
    SymbolId arg = 0;
    SymbolId user = 0;
    int32_t version = 0;
    int64_t timestamp = 0;
    uint64_t epoch = 0;  ///< Wave scope (EventMessage::wave_epoch).
    uint32_t extra_begin = 0;
    uint16_t extra_count = 0;
    uint8_t direction = 0;
    uint8_t origin = 0;
  };

  // --- Sink access (durability layer) ------------------------------------

  /// Attaches (or detaches, with nullptr) the append sink. The sink is
  /// not owned and must outlive the journal or be detached first.
  void SetSink(JournalSink* sink) noexcept { sink_ = sink; }
  JournalSink* sink() const noexcept { return sink_; }

  /// Raw row access for sinks (no bounds check; callers index < Size()).
  const Row& RawRow(size_t index) const noexcept { return rows_[index]; }

  /// Text behind an interned id (throws NotFoundError on unknown ids).
  const std::string& SymbolText(SymbolId id) const { return strings_.Text(id); }

  /// Extra-arg pool access for sinks (no bounds check).
  SymbolId ExtraPoolAt(uint32_t index) const noexcept {
    return extra_pool_[index];
  }

 private:
  /// The one row-assembly path: fills a row from an interned payload
  /// key plus the delivery target (whose block/view are interned here).
  /// Origin is left at the caller's discretion.
  Row RowFromKey(const PayloadKey& key, const metadb::Oid& target);

  /// Builds a row for `event` delivered at `target` (the caller picks
  /// the payload's own target or a per-delivery substitute, so no field
  /// is interned twice). Throws Error past 65535 extra args — the row's
  /// count field is 16-bit and truncating an audit record is worse.
  Row MakeRow(const EventMessage& event, const metadb::Oid& target);
  EventMessage Materialize(const Row& row) const;

  SymbolTable strings_;
  std::vector<Row> rows_;
  std::vector<SymbolId> extra_pool_;
  JournalSink* sink_ = nullptr;
};

}  // namespace damocles::events
