// Append-only journal of design events.
//
// Keeps the full audit trail the tracking system needs: every event the
// engine processed, in order, with its origin. Supports replay — feeding
// a recorded trace back through a fresh engine must reproduce identical
// meta-data, which the determinism tests rely on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "events/event.hpp"

namespace damocles::events {

/// One journal record: an event plus its position in processing order.
struct JournalRecord {
  size_t sequence = 0;
  EventMessage event;
};

/// In-memory audit journal.
class EventJournal {
 public:
  /// Appends a record; sequence numbers are assigned densely from 0.
  void Record(const EventMessage& event);

  /// Move overload: the propagation hot path journals one synthesized
  /// record per delivery and must not pay a second copy for it.
  void Record(EventMessage&& event);

  const std::vector<JournalRecord>& Records() const noexcept {
    return records_;
  }

  size_t Size() const noexcept { return records_.size(); }
  bool Empty() const noexcept { return records_.empty(); }
  void Clear();

  /// Returns only the externally originated events — the trace to feed a
  /// fresh engine for replay (rule/propagation events are re-derived).
  std::vector<EventMessage> ExternalTrace() const;

  /// Multi-line dump for diagnostics, one record per line.
  std::string Dump() const;

 private:
  std::vector<JournalRecord> records_;
};

}  // namespace damocles::events
