#include "events/event.hpp"

#include "common/strings.hpp"

namespace damocles::events {

const char* DirectionName(Direction direction) noexcept {
  return direction == Direction::kUp ? "up" : "down";
}

const char* EventOriginName(EventOrigin origin) noexcept {
  switch (origin) {
    case EventOrigin::kExternal:
      return "external";
    case EventOrigin::kRule:
      return "rule";
    case EventOrigin::kPropagated:
      return "propagated";
    case EventOrigin::kSystem:
      return "system";
  }
  return "unknown";
}

std::string FormatEvent(const EventMessage& event) {
  std::string text = event.name;
  text += " ";
  text += DirectionName(event.direction);
  text += " ";
  text += metadb::FormatOid(event.target);
  if (!event.arg.empty()) {
    text += " ";
    text += QuoteString(event.arg);
  }
  for (const std::string& extra : event.extra_args) {
    text += " ";
    text += QuoteString(extra);
  }
  return text;
}

}  // namespace damocles::events
