#include "policy/policy_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::policy {

const char* OperationName(Operation operation) noexcept {
  switch (operation) {
    case Operation::kCheckIn:
      return "checkin";
    case Operation::kCheckOut:
      return "checkout";
    case Operation::kPostEvent:
      return "post_event";
    case Operation::kRegisterLink:
      return "register_link";
    case Operation::kSnapshot:
      return "snapshot";
    case Operation::kReinitBlueprint:
      return "reinit_blueprint";
  }
  return "unknown";
}

namespace {

std::optional<Operation> ParseOperation(std::string_view word) {
  static constexpr std::pair<const char*, Operation> kOperations[] = {
      {"checkin", Operation::kCheckIn},
      {"checkout", Operation::kCheckOut},
      {"post_event", Operation::kPostEvent},
      {"register_link", Operation::kRegisterLink},
      {"snapshot", Operation::kSnapshot},
      {"reinit_blueprint", Operation::kReinitBlueprint},
  };
  for (const auto& [name, operation] : kOperations) {
    if (word == name) return operation;
  }
  return std::nullopt;
}

}  // namespace

void PolicyEngine::AddGroup(const std::string& name,
                            std::vector<std::string> members) {
  for (auto& [existing_name, existing_members] : groups_) {
    if (existing_name == name) {
      for (std::string& member : members) {
        existing_members.push_back(std::move(member));
      }
      return;
    }
  }
  groups_.emplace_back(name, std::move(members));
}

bool PolicyEngine::IsMember(std::string_view name,
                            std::string_view user) const {
  for (const auto& [group_name, members] : groups_) {
    if (group_name != name) continue;
    return std::find(members.begin(), members.end(), user) != members.end();
  }
  return false;
}

void PolicyEngine::AddRule(PolicyRule rule) {
  rules_.push_back(std::move(rule));
}

bool PolicyEngine::RuleMatches(const PolicyRule& rule,
                               const PolicyRequest& request) const {
  if (rule.operation != request.operation) return false;
  if (!rule.phase.empty() && rule.phase != phase_) return false;
  if (!rule.view.empty() && rule.view != request.view) return false;
  if (!rule.block.empty() && rule.block != request.block) return false;
  if (!rule.user.empty()) {
    if (rule.user.front() == '@') {
      if (!IsMember(std::string_view(rule.user).substr(1), request.user)) {
        return false;
      }
    } else if (rule.user != request.user) {
      return false;
    }
  }
  return true;
}

PolicyDecision PolicyEngine::Evaluate(const PolicyRequest& request) const {
  ++evaluations_;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (!RuleMatches(rules_[i], request)) continue;
    PolicyDecision decision;
    decision.matched_rule = static_cast<int>(i);
    decision.allowed = rules_[i].effect == Effect::kAllow;
    if (!decision.allowed) {
      ++denials_;
      decision.reason = rules_[i].reason.empty()
                            ? std::string(OperationName(request.operation)) +
                                  " denied by project policy"
                            : rules_[i].reason;
    }
    return decision;
  }
  return PolicyDecision{};  // Default: allow, non-obstructively.
}

PolicyEngine ParsePolicyText(std::string_view text) {
  PolicyEngine engine;
  int line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    std::string_view raw = end == std::string_view::npos
                               ? text.substr(start)
                               : text.substr(start, end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;

    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;

    // Tokenize, honouring quoted reason strings.
    std::vector<std::string> words;
    size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && line[pos] == ' ') ++pos;
      if (pos >= line.size()) break;
      const size_t quote = line.find('"', pos);
      const size_t space = line.find(' ', pos);
      if (quote != std::string_view::npos &&
          (space == std::string_view::npos || quote < space)) {
        // A token containing a quoted part: key="value with spaces".
        std::string head(line.substr(pos, quote - pos));
        size_t qpos = quote;
        std::string body;
        if (!UnquoteString(line, qpos, body)) {
          throw ParseError("unterminated quote in policy rule", line_number,
                           static_cast<int>(quote) + 1);
        }
        words.push_back(head + body);
        pos = qpos;
        continue;
      }
      const size_t token_end =
          space == std::string_view::npos ? line.size() : space;
      words.emplace_back(line.substr(pos, token_end - pos));
      pos = token_end;
    }
    if (words.empty()) continue;

    if (words[0] == "group") {
      if (words.size() < 3) {
        throw ParseError("group needs a name and at least one member",
                         line_number, 1);
      }
      engine.AddGroup(words[1],
                      std::vector<std::string>(words.begin() + 2,
                                               words.end()));
      continue;
    }

    PolicyRule rule;
    if (words[0] == "allow") {
      rule.effect = Effect::kAllow;
    } else if (words[0] == "deny") {
      rule.effect = Effect::kDeny;
    } else {
      throw ParseError("expected 'allow', 'deny' or 'group', got '" +
                           words[0] + "'",
                       line_number, 1);
    }
    if (words.size() < 2) {
      throw ParseError("rule needs an operation", line_number, 1);
    }
    const auto operation = ParseOperation(words[1]);
    if (!operation.has_value()) {
      throw ParseError("unknown operation '" + words[1] + "'", line_number,
                       1);
    }
    rule.operation = *operation;

    for (size_t i = 2; i < words.size(); ++i) {
      const std::string& word = words[i];
      const size_t eq = word.find('=');
      if (eq == std::string::npos) {
        throw ParseError("expected key=value, got '" + word + "'",
                         line_number, 1);
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      if (key == "user") {
        rule.user = value;
      } else if (key == "view" || key == "event") {
        rule.view = value;
      } else if (key == "block") {
        rule.block = value;
      } else if (key == "phase") {
        rule.phase = value;
      } else if (key == "reason") {
        rule.reason = value;
      } else {
        throw ParseError("unknown rule key '" + key + "'", line_number, 1);
      }
    }
    engine.AddRule(std::move(rule));
  }
  return engine;
}

std::string FormatPolicy(const PolicyEngine& engine) {
  std::string text;
  for (const auto& [name, members] : engine.groups()) {
    text += "group " + name;
    for (const std::string& member : members) text += " " + member;
    text += "\n";
  }
  for (const PolicyRule& rule : engine.rules()) {
    text += rule.effect == Effect::kAllow ? "allow " : "deny ";
    text += OperationName(rule.operation);
    if (!rule.user.empty()) text += " user=" + rule.user;
    if (!rule.view.empty()) text += " view=" + rule.view;
    if (!rule.block.empty()) text += " block=" + rule.block;
    if (!rule.phase.empty()) text += " phase=" + rule.phase;
    if (!rule.reason.empty()) {
      text += " reason=" + QuoteString(rule.reason);
    }
    text += "\n";
  }
  return text;
}

}  // namespace damocles::policy
