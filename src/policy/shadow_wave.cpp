#include "policy/shadow_wave.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace damocles::policy {

namespace {

using blueprint::Blueprint;
using blueprint::LinkTemplate;
using blueprint::RuntimeRule;
using blueprint::ViewTemplate;
using events::Direction;
using metadb::Link;
using metadb::LinkId;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::Oid;
using metadb::OidId;

/// Mirror of RunTimeEngine::FindLinkTemplate over the proposed
/// blueprint: link_from templates live in the *target* view, use_link
/// templates in the shared view; specific view first, then default.
const LinkTemplate* FindProposedTemplate(const Blueprint& proposed,
                                         LinkKind kind,
                                         std::string_view from_view,
                                         std::string_view to_view) {
  const ViewTemplate* sources[2] = {proposed.FindView(to_view),
                                    proposed.DefaultView()};
  for (const ViewTemplate* source : sources) {
    if (source == nullptr) continue;
    for (const LinkTemplate& candidate : source->links) {
      if (candidate.kind != kind) continue;
      if (kind == LinkKind::kUse) return &candidate;
      if (candidate.from_view == from_view) return &candidate;
    }
  }
  return nullptr;
}

/// Would `link` propagate `event_name` if the proposed version were
/// promoted and RetemplateLinks re-derived its PROPAGATE list?
bool WouldPropagate(const MetaDatabase& db, const Blueprint& proposed,
                    const Link& link, std::string_view event_name) {
  const LinkTemplate* match = FindProposedTemplate(
      proposed, link.kind, db.GetObject(link.from).oid.view,
      db.GetObject(link.to).oid.view);
  if (match == nullptr) return false;
  for (const std::string& event : match->propagates) {
    if (event == event_name) return true;
  }
  return false;
}

/// Mirror of RunTimeEngine::ForEachMatchingRule: rules matching the
/// event at a view, default view included.
size_t CountMatchingRules(const Blueprint& proposed, std::string_view view,
                          std::string_view event_name) {
  size_t count = 0;
  const ViewTemplate* sources[2] = {proposed.DefaultView(),
                                    proposed.FindView(view)};
  for (const ViewTemplate* source : sources) {
    if (source == nullptr) continue;
    for (const RuntimeRule& rule : source->rules) {
      if (rule.event == event_name) ++count;
    }
  }
  return count;
}

}  // namespace

ShadowWaveReport TraceShadowWave(const MetaDatabase& db,
                                 const Blueprint& proposed,
                                 uint64_t version_id,
                                 std::string_view event_name,
                                 Direction direction, const Oid& start,
                                 const ShadowWaveOptions& options) {
  const std::optional<OidId> start_id = db.FindObject(start);
  if (!start_id.has_value()) {
    throw NotFoundError("shadow-wave: unknown start object " +
                        metadb::FormatOid(start));
  }

  ShadowWaveReport report;
  report.version_id = version_id;
  report.event = std::string(event_name);
  report.direction = direction;
  report.start = start;
  report.depth_cap = options.depth_cap;

  // Batched BFS, one generation per depth — the same expansion order
  // the engine's ProcessWaveSeeded uses, so the reached set matches a
  // real wave under the promoted templates (modulo rule-posted
  // follow-on events, which a static trace intentionally excludes).
  std::unordered_set<uint32_t> visited;
  std::unordered_map<uint32_t, uint32_t> parent;  // child -> predecessor
  visited.insert(start_id->value());
  std::vector<OidId> batch{*start_id};
  std::vector<OidId> next;

  const auto chain_of = [&](OidId target) {
    std::vector<Oid> chain;
    for (uint32_t at = target.value();;) {
      chain.push_back(db.GetObject(OidId(at)).oid);
      if (at == start_id->value()) break;
      at = parent.at(at);
    }
    return std::vector<Oid>(chain.rbegin(), chain.rend());
  };

  const auto admit = [&](OidId source, OidId receiver) {
    if (!visited.insert(receiver.value()).second) return;
    parent.emplace(receiver.value(), source.value());
    next.push_back(receiver);
  };

  for (size_t depth = 1; depth <= options.depth_cap && !batch.empty();
       ++depth) {
    next.clear();
    for (const OidId source : batch) {
      if (direction == Direction::kDown) {
        for (const LinkId link_id : db.OutLinks(source)) {
          const Link& link = db.GetLink(link_id);
          if (WouldPropagate(db, proposed, link, event_name)) {
            admit(source, link.to);
          }
        }
      } else {
        for (const LinkId link_id : db.InLinks(source)) {
          const Link& link = db.GetLink(link_id);
          if (WouldPropagate(db, proposed, link, event_name)) {
            admit(source, link.from);
          }
        }
      }
    }
    for (const OidId receiver : next) {
      if (report.paths.size() >= options.max_targets) {
        report.truncated = true;
        break;
      }
      ShadowWavePath path;
      path.target = db.GetObject(receiver).oid;
      path.depth = depth;
      path.direct = depth == 1;
      path.chain = chain_of(receiver);
      path.matched_rules =
          CountMatchingRules(proposed, path.target.view, event_name);
      if (path.direct) {
        ++report.direct_count;
      } else {
        ++report.transitive_count;
      }
      report.paths.push_back(std::move(path));
    }
    if (report.truncated) break;
    batch.swap(next);
  }
  if (!report.truncated && !batch.empty() &&
      report.depth_cap > 0) {
    // The cap ended expansion while receivers were still being found:
    // probe one more generation to report truncation honestly.
    for (const OidId source : batch) {
      const std::vector<LinkId>& links = direction == Direction::kDown
                                             ? db.OutLinks(source)
                                             : db.InLinks(source);
      for (const LinkId link_id : links) {
        const Link& link = db.GetLink(link_id);
        const OidId receiver =
            direction == Direction::kDown ? link.to : link.from;
        if (visited.count(receiver.value()) != 0) continue;
        if (WouldPropagate(db, proposed, link, event_name)) {
          report.truncated = true;
          break;
        }
      }
      if (report.truncated) break;
    }
  }
  return report;
}

}  // namespace damocles::policy
