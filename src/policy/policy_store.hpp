// Versioned blueprint/policy store with a commit-chain lifecycle.
//
// The paper treats the project BluePrint as a static artifact the
// administrator installs once; everything around it (waves, snapshots,
// WAL, sessions) has since become versioned and concurrent. This module
// makes the blueprint itself versioned: every candidate rule file is a
// PolicyVersion moving through
//
//   propose -> validate -> promote -> (supersede | rollback)
//
// like a git-style change table with a gated promotion lifecycle.
// Promotion is what the live engines observe — the server compiles the
// promoted text through the existing compiled_rules generation counter,
// so per-OID rule bindings rebind lazily without a stop-the-world
// reload. The store itself is pure bookkeeping: it never touches an
// engine, which is what lets shadow waves trace a *proposed* version
// against a pinned snapshot without observable side effects.
//
// Thread safety: all public methods are safe to call concurrently; the
// store serializes internally. Reads hand out copies, never references,
// so a wire session inspecting a version races nothing.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blueprint/validator.hpp"

namespace damocles::policy {

/// Lifecycle state of one policy version. The active version is always
/// the top of the promotion stack and always kPromoted.
enum class PolicyVersionStatus : uint8_t {
  kProposed,    ///< Registered, parseable, not yet validated.
  kValidated,   ///< Passed static validation; eligible for promotion.
  kRejected,    ///< Failed static validation; terminal.
  kPromoted,    ///< The active version live engines are bound to.
  kSuperseded,  ///< Was active; a newer promotion replaced it.
  kRolledBack,  ///< Was active; explicitly rolled back.
};

const char* PolicyVersionStatusName(PolicyVersionStatus status) noexcept;

/// One entry of the commit chain.
struct PolicyVersion {
  uint64_t id = 0;      ///< Monotone from 1; never reused.
  uint64_t parent = 0;  ///< Active version at propose time (0 = none).
  std::string author;
  std::string message;
  std::string blueprint_text;
  PolicyVersionStatus status = PolicyVersionStatus::kProposed;
};

/// The versioned policy table. Mutations throw Error subclasses on
/// lifecycle violations (promote before validate, rollback past the
/// root, ...) and leave the store unchanged, so a WAL-logged operation
/// is appended only after the transition actually happened.
class PolicyStore {
 public:
  /// Registers a candidate version. Parses `blueprint_text` to reject
  /// malformed rule files at the door (throws ParseError); a proposal
  /// never mutates engine state. Returns the new version id.
  uint64_t Propose(std::string blueprint_text, std::string author,
                   std::string message);

  /// Statically validates a proposed version and records the verdict:
  /// kValidated when the report carries no errors, kRejected otherwise.
  /// Deterministic, so replaying the operation reproduces the verdict.
  /// Throws NotFoundError for unknown ids and IntegrityError when the
  /// version already moved past validation.
  blueprint::ValidationReport Validate(uint64_t id);

  /// Makes `id` the active version. Requires kValidated (first
  /// promotion) or kSuperseded/kRolledBack (re-promotion / roll
  /// forward); the previously active version becomes kSuperseded.
  /// Returns a copy of the newly active version.
  PolicyVersion Promote(uint64_t id);

  /// Reverts to the previously promoted version: the active version
  /// becomes kRolledBack, its predecessor on the promotion stack
  /// becomes active again. Throws IntegrityError when no predecessor
  /// exists (the root install cannot be rolled back).
  PolicyVersion Rollback();

  /// Registers an externally installed blueprint (the classic
  /// InitializeBlueprint path) as proposed+validated+promoted in one
  /// step, keeping the chain complete. The caller has already parsed
  /// the text; Adopt does not re-validate.
  uint64_t Adopt(std::string blueprint_text, std::string author,
                 std::string message);

  /// Id of the active version (0 before the first promotion/adoption).
  uint64_t active_id() const;

  /// Copy of one version. Throws NotFoundError for unknown ids.
  PolicyVersion Get(uint64_t id) const;

  std::optional<PolicyVersion> Find(uint64_t id) const;

  /// Copies of every version, id order.
  std::vector<PolicyVersion> Versions() const;

  /// Promotion stack bottom-to-top; the top is the active version.
  std::vector<uint64_t> PromotedChain() const;

  size_t size() const;

  /// Blueprint text of the active version ("" before the first).
  std::string ActiveBlueprintText() const;

  /// Serializes the full table (next id, promotion stack, every
  /// version) to the checkpoint text format; RestoreFromText is the
  /// exact inverse.
  std::string SerializeText() const;

  /// Replaces the store's contents from SerializeText output. Throws
  /// WireFormatError on malformed input, leaving the store unchanged.
  void RestoreFromText(std::string_view text);

 private:
  PolicyVersion& Locate(uint64_t id);

  mutable std::mutex mutex_;
  std::vector<PolicyVersion> versions_;  ///< Id order (id = index + 1).
  std::vector<uint64_t> promoted_stack_;
  uint64_t next_id_ = 1;
};

}  // namespace damocles::policy
