// Project policies: who may do what, when.
//
// The paper's title promises "project policies in IC design"; §3.3
// sketches the mechanism (wrapper-side gating) and §3.2 the phases
// ("different BluePrints can be defined ... for each phase of a
// project"). This module makes policies first-class: an ordered rule
// list over (user/group, operation, view/block scope, project phase),
// evaluated first-match, consulted by the project server before any
// state-changing designer operation.
//
// In DAMOCLES' non-obstructive spirit the default is ALLOW — policies
// carve out restrictions (e.g. "only cad_admins install libraries",
// "layout is frozen during signoff"), they do not impose a methodology.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace damocles::policy {

/// Operations the project server gates.
enum class Operation {
  kCheckIn,
  kCheckOut,
  kPostEvent,
  kRegisterLink,
  kSnapshot,
  kReinitBlueprint,
};

const char* OperationName(Operation operation) noexcept;

/// What a rule says about a matching request.
enum class Effect {
  kAllow,
  kDeny,
};

/// One policy rule. Empty string fields are wildcards. For kPostEvent
/// the `view` field matches the event name; for the other operations it
/// matches the design view.
struct PolicyRule {
  Effect effect = Effect::kDeny;
  Operation operation = Operation::kCheckIn;
  std::string user;   ///< User name, "@group" reference, or "" = any.
  std::string view;   ///< View (or event name for kPostEvent); "" = any.
  std::string block;  ///< Block name; "" = any.
  std::string phase;  ///< Project phase; "" = any phase.
  std::string reason; ///< Shown to the denied designer.
};

/// A policy request as the server sees it.
struct PolicyRequest {
  Operation operation = Operation::kCheckIn;
  std::string user;
  std::string view;   ///< Or event name, for kPostEvent.
  std::string block;
};

/// Decision with provenance.
struct PolicyDecision {
  bool allowed = true;
  std::string reason;       ///< Denial reason ("" when allowed).
  int matched_rule = -1;    ///< Index of the matching rule, -1 = default.
};

/// Ordered-rule policy engine with named groups.
class PolicyEngine {
 public:
  /// Defines (or extends) a group. Group references in rules use
  /// "@name" in the user field.
  void AddGroup(const std::string& name, std::vector<std::string> members);

  /// True if `user` is in group `name`.
  bool IsMember(std::string_view name, std::string_view user) const;

  /// Appends a rule (rules match first-to-last).
  void AddRule(PolicyRule rule);

  size_t RuleCount() const noexcept { return rules_.size(); }
  const std::vector<PolicyRule>& rules() const noexcept { return rules_; }
  const std::vector<std::pair<std::string, std::vector<std::string>>>&
  groups() const noexcept {
    return groups_;
  }

  /// Sets the current project phase ("" = no phase).
  void SetPhase(std::string phase) { phase_ = std::move(phase); }
  const std::string& phase() const noexcept { return phase_; }

  /// Evaluates a request: first matching rule wins; no match = allow.
  PolicyDecision Evaluate(const PolicyRequest& request) const;

  /// Statistics (evaluations / denials since construction).
  size_t evaluations() const noexcept { return evaluations_; }
  size_t denials() const noexcept { return denials_; }

 private:
  bool RuleMatches(const PolicyRule& rule, const PolicyRequest& request)
      const;

  std::vector<PolicyRule> rules_;
  std::vector<std::pair<std::string, std::vector<std::string>>> groups_;
  std::string phase_;
  mutable size_t evaluations_ = 0;
  mutable size_t denials_ = 0;
};

/// Parses a policy file: one rule per line,
///   allow|deny <operation> [user=<u>] [view=<v>] [block=<b>]
///              [phase=<p>] [reason="..."]
///   group <name> <member> [member ...]
/// '#' starts a comment. Throws ParseError on malformed lines.
PolicyEngine ParsePolicyText(std::string_view text);

/// Renders the engine's groups and rules back to the text format
/// (parse -> format -> parse is stable).
std::string FormatPolicy(const PolicyEngine& engine);

}  // namespace damocles::policy
