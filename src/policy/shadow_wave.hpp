// Shadow waves: dry-run change-propagation impact analysis.
//
// Before promoting a proposed policy version, an administrator wants to
// know what a given event *would* touch under the candidate rule set.
// A shadow wave answers that without risking anything: it walks the
// same batched-BFS adjacency the run-time engine walks (OutLinks for
// `down`, InLinks for `up`), but recomputes each link's PROPAGATE list
// from the *proposed* blueprint's link templates instead of the live
// ones — exactly what RetemplateLinks would install if the version were
// promoted. The trace reads a const database (typically a pinned
// snapshot), mutates no property state, claims nothing and records no
// journal rows; the differential suite asserts the engine is
// byte-identical before and after.
//
// Every reached OID is reported as an impact path: DIRECT (depth 1,
// one link from the start) or TRANSITIVE (deeper), with the link chain
// that carried the event there and the number of proposed rules that
// would fire at the target's view. Expansion stops at a configurable
// depth cap; `truncated` reports whether the cap cut a live frontier.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blueprint/ast.hpp"
#include "events/event.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::policy {

struct ShadowWaveOptions {
  /// Maximum path depth expanded (1 = direct receivers only).
  size_t depth_cap = 8;
  /// Safety valve mirroring the engine's max_wave_deliveries.
  size_t max_targets = 4096;
};

/// One impacted OID and how the event would reach it.
struct ShadowWavePath {
  metadb::Oid target;
  size_t depth = 0;  ///< Links traversed from the start (>= 1).
  bool direct = false;  ///< depth == 1 (paper: direct receiver).
  /// The OID chain start -> ... -> target that first reached it (BFS
  /// order, so it is a shortest path under the proposed templates).
  std::vector<metadb::Oid> chain;
  /// Proposed rules matching the event at the target's view (specific
  /// view + default view), i.e. how many rule bodies would fire there.
  size_t matched_rules = 0;
};

/// The full dry-run impact report for one (version, event, start).
struct ShadowWaveReport {
  uint64_t version_id = 0;
  std::string event;
  events::Direction direction = events::Direction::kDown;
  metadb::Oid start;
  size_t depth_cap = 0;
  bool truncated = false;    ///< The cap cut a non-empty frontier.
  size_t direct_count = 0;
  size_t transitive_count = 0;
  std::vector<ShadowWavePath> paths;  ///< BFS discovery order.
};

/// Traces the wave `event_name`/`direction` from `start` as the
/// proposed blueprint would propagate it. Read-only on `db`; throws
/// NotFoundError when `start` is not registered.
ShadowWaveReport TraceShadowWave(const metadb::MetaDatabase& db,
                                 const blueprint::Blueprint& proposed,
                                 uint64_t version_id,
                                 std::string_view event_name,
                                 events::Direction direction,
                                 const metadb::Oid& start,
                                 const ShadowWaveOptions& options = {});

}  // namespace damocles::policy
