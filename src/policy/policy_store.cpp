#include "policy/policy_store.hpp"

#include <utility>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace damocles::policy {

namespace {

constexpr const char* kStoreMagic = "policystore";
constexpr const char* kStoreVersion = "v1";

PolicyVersionStatus ParseStatusName(std::string_view name, size_t pos) {
  for (const PolicyVersionStatus status :
       {PolicyVersionStatus::kProposed, PolicyVersionStatus::kValidated,
        PolicyVersionStatus::kRejected, PolicyVersionStatus::kPromoted,
        PolicyVersionStatus::kSuperseded, PolicyVersionStatus::kRolledBack}) {
    if (name == PolicyVersionStatusName(status)) return status;
  }
  throw WireFormatError("policy store: unknown status '" + std::string(name) +
                        "' at offset " + std::to_string(pos));
}

/// Token cursor over the serialized store. Quoted strings may span
/// lines (QuoteString does not escape newlines), so parsing is a flat
/// token stream, not line-based.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  std::string_view Word() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() && !IsSpace(text_[pos_])) ++pos_;
    if (pos_ == start) Fail("unexpected end of input");
    return text_.substr(start, pos_ - start);
  }

  void Expect(std::string_view word) {
    const std::string_view got = Word();
    if (got != word) {
      Fail("expected '" + std::string(word) + "', got '" + std::string(got) +
           "'");
    }
  }

  uint64_t U64() {
    const std::string_view word = Word();
    uint64_t value = 0;
    for (const char c : word) {
      if (c < '0' || c > '9') Fail("expected number, got '" + std::string(word) + "'");
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    return value;
  }

  std::string Quoted() {
    SkipSpace();
    std::string out;
    if (!UnquoteString(text_, pos_, out)) Fail("expected quoted string");
    return out;
  }

  size_t pos() const noexcept { return pos_; }

  [[noreturn]] void Fail(const std::string& why) const {
    throw WireFormatError("policy store: " + why + " at offset " +
                          std::to_string(pos_));
  }

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  void SkipSpace() {
    while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const char* PolicyVersionStatusName(PolicyVersionStatus status) noexcept {
  switch (status) {
    case PolicyVersionStatus::kProposed:
      return "proposed";
    case PolicyVersionStatus::kValidated:
      return "validated";
    case PolicyVersionStatus::kRejected:
      return "rejected";
    case PolicyVersionStatus::kPromoted:
      return "promoted";
    case PolicyVersionStatus::kSuperseded:
      return "superseded";
    case PolicyVersionStatus::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

uint64_t PolicyStore::Propose(std::string blueprint_text, std::string author,
                              std::string message) {
  // Parse outside the lock: rejecting malformed text must not block
  // concurrent readers, and a throw leaves the store untouched.
  blueprint::ParseBlueprint(blueprint_text);
  std::lock_guard<std::mutex> lock(mutex_);
  PolicyVersion version;
  version.id = next_id_++;
  version.parent = promoted_stack_.empty() ? 0 : promoted_stack_.back();
  version.author = std::move(author);
  version.message = std::move(message);
  version.blueprint_text = std::move(blueprint_text);
  version.status = PolicyVersionStatus::kProposed;
  versions_.push_back(std::move(version));
  return versions_.back().id;
}

blueprint::ValidationReport PolicyStore::Validate(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  PolicyVersion& version = Locate(id);
  if (version.status != PolicyVersionStatus::kProposed &&
      version.status != PolicyVersionStatus::kValidated &&
      version.status != PolicyVersionStatus::kRejected) {
    throw IntegrityError("policy version " + std::to_string(id) +
                         " is " + PolicyVersionStatusName(version.status) +
                         "; only proposed versions validate");
  }
  const blueprint::ValidationReport report =
      blueprint::ValidateBlueprint(blueprint::ParseBlueprint(
          version.blueprint_text));
  version.status = report.HasErrors() ? PolicyVersionStatus::kRejected
                                      : PolicyVersionStatus::kValidated;
  return report;
}

PolicyVersion PolicyStore::Promote(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  PolicyVersion& version = Locate(id);
  if (!promoted_stack_.empty() && promoted_stack_.back() == id) {
    throw IntegrityError("policy version " + std::to_string(id) +
                         " is already active");
  }
  switch (version.status) {
    case PolicyVersionStatus::kValidated:
    case PolicyVersionStatus::kSuperseded:
    case PolicyVersionStatus::kRolledBack:
      break;
    case PolicyVersionStatus::kProposed:
      throw IntegrityError("policy version " + std::to_string(id) +
                           " has not been validated; run policy-validate");
    case PolicyVersionStatus::kRejected:
      throw IntegrityError("policy version " + std::to_string(id) +
                           " failed validation and cannot be promoted");
    case PolicyVersionStatus::kPromoted:
      throw IntegrityError("policy version " + std::to_string(id) +
                           " is already promoted");
  }
  if (!promoted_stack_.empty()) {
    Locate(promoted_stack_.back()).status = PolicyVersionStatus::kSuperseded;
  }
  promoted_stack_.push_back(id);
  version.status = PolicyVersionStatus::kPromoted;
  return version;
}

PolicyVersion PolicyStore::Rollback() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (promoted_stack_.size() < 2) {
    throw IntegrityError(
        "policy rollback: no previously promoted version to return to");
  }
  Locate(promoted_stack_.back()).status = PolicyVersionStatus::kRolledBack;
  promoted_stack_.pop_back();
  PolicyVersion& active = Locate(promoted_stack_.back());
  active.status = PolicyVersionStatus::kPromoted;
  return active;
}

uint64_t PolicyStore::Adopt(std::string blueprint_text, std::string author,
                            std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  PolicyVersion version;
  version.id = next_id_++;
  version.parent = promoted_stack_.empty() ? 0 : promoted_stack_.back();
  version.author = std::move(author);
  version.message = std::move(message);
  version.blueprint_text = std::move(blueprint_text);
  version.status = PolicyVersionStatus::kPromoted;
  if (!promoted_stack_.empty()) {
    Locate(promoted_stack_.back()).status = PolicyVersionStatus::kSuperseded;
  }
  versions_.push_back(std::move(version));
  promoted_stack_.push_back(versions_.back().id);
  return versions_.back().id;
}

uint64_t PolicyStore::active_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return promoted_stack_.empty() ? 0 : promoted_stack_.back();
}

PolicyVersion PolicyStore::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > versions_.size()) {
    throw NotFoundError("unknown policy version " + std::to_string(id));
  }
  return versions_[id - 1];
}

std::optional<PolicyVersion> PolicyStore::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > versions_.size()) return std::nullopt;
  return versions_[id - 1];
}

std::vector<PolicyVersion> PolicyStore::Versions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return versions_;
}

std::vector<uint64_t> PolicyStore::PromotedChain() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return promoted_stack_;
}

size_t PolicyStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return versions_.size();
}

std::string PolicyStore::ActiveBlueprintText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (promoted_stack_.empty()) return "";
  return versions_[promoted_stack_.back() - 1].blueprint_text;
}

std::string PolicyStore::SerializeText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += kStoreMagic;
  out += ' ';
  out += kStoreVersion;
  out += '\n';
  out += "next-id " + std::to_string(next_id_) + "\n";
  out += "stack " + std::to_string(promoted_stack_.size());
  for (const uint64_t id : promoted_stack_) out += " " + std::to_string(id);
  out += '\n';
  for (const PolicyVersion& version : versions_) {
    out += "version " + std::to_string(version.id) + " " +
           std::to_string(version.parent) + " " +
           PolicyVersionStatusName(version.status) + " " +
           QuoteString(version.author) + " " + QuoteString(version.message) +
           " " + QuoteString(version.blueprint_text) + "\n";
  }
  out += "end\n";
  return out;
}

void PolicyStore::RestoreFromText(std::string_view text) {
  // Parse into locals first: a malformed dump must leave the live
  // table untouched.
  Cursor cursor(text);
  cursor.Expect(kStoreMagic);
  cursor.Expect(kStoreVersion);
  cursor.Expect("next-id");
  const uint64_t next_id = cursor.U64();
  cursor.Expect("stack");
  const uint64_t stack_size = cursor.U64();
  std::vector<uint64_t> stack;
  stack.reserve(stack_size);
  for (uint64_t i = 0; i < stack_size; ++i) stack.push_back(cursor.U64());
  std::vector<PolicyVersion> versions;
  while (true) {
    const std::string_view word = cursor.Word();
    if (word == "end") break;
    if (word != "version") {
      cursor.Fail("expected 'version' or 'end', got '" + std::string(word) +
                  "'");
    }
    PolicyVersion version;
    version.id = cursor.U64();
    version.parent = cursor.U64();
    version.status = ParseStatusName(cursor.Word(), cursor.pos());
    version.author = cursor.Quoted();
    version.message = cursor.Quoted();
    version.blueprint_text = cursor.Quoted();
    if (version.id != versions.size() + 1) {
      cursor.Fail("version ids must be dense from 1");
    }
    versions.push_back(std::move(version));
  }
  if (next_id != versions.size() + 1) {
    cursor.Fail("next-id does not match the version count");
  }
  for (const uint64_t id : stack) {
    if (id == 0 || id > versions.size()) cursor.Fail("stack id out of range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  versions_ = std::move(versions);
  promoted_stack_ = std::move(stack);
  next_id_ = next_id;
}

PolicyVersion& PolicyStore::Locate(uint64_t id) {
  if (id == 0 || id > versions_.size()) {
    throw NotFoundError("unknown policy version " + std::to_string(id));
  }
  return versions_[id - 1];
}

}  // namespace damocles::policy
