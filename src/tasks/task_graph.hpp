// Design tasks: the paper's future-work extension, implemented.
//
// Paper conclusion: "We are currently investigating ways to incorporate
// the notion of design tasks to the project BluePrint which gives a
// higher level of description of design activities and their
// environment."
//
// A task is a named milestone over the meta-data: a set of goal
// conditions (property == value on the latest version of given views of
// given blocks) plus dependencies on other tasks. The task graph is
// evaluated against the live meta-database — tasks are never "checked
// off" by hand; they are satisfied exactly when the data says so, in the
// same observer spirit as the rest of DAMOCLES.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metadb/meta_database.hpp"
#include "query/query.hpp"

namespace damocles::tasks {

/// One goal condition: the latest version of (block, view) must have
/// `property` == `required_value`. An empty block means "every block
/// that has this view".
struct GoalCondition {
  std::string block;
  std::string view;
  std::string property;
  std::string required_value;
};

/// Evaluation status of a task.
enum class TaskStatus {
  kBlocked,    ///< A dependency is not yet satisfied.
  kReady,      ///< Dependencies satisfied, goals not yet met.
  kSatisfied,  ///< All goal conditions hold.
};

const char* TaskStatusName(TaskStatus status) noexcept;

/// A task definition.
struct TaskDef {
  std::string name;
  std::string description;
  std::vector<GoalCondition> goals;
  std::vector<std::string> depends_on;  ///< Names of prerequisite tasks.
};

/// Evaluation result for one task.
struct TaskEvaluation {
  std::string name;
  TaskStatus status = TaskStatus::kBlocked;
  /// Conditions that do not hold yet (empty when satisfied).
  std::vector<query::Blocker> open_goals;
  /// Unsatisfied dependencies (empty unless blocked).
  std::vector<std::string> open_dependencies;
};

/// A project's task graph. Definitions are static; evaluation reads the
/// live meta-database.
class TaskGraph {
 public:
  /// Adds a task. Throws IntegrityError on duplicate names, unknown
  /// dependencies, dependency cycles, or tasks without goals.
  void AddTask(TaskDef task);

  size_t size() const noexcept { return tasks_.size(); }
  const TaskDef* Find(std::string_view name) const;

  /// Task names in a valid execution order (dependencies first).
  std::vector<std::string> TopologicalOrder() const;

  /// Evaluates one task against the database (dependencies included).
  TaskEvaluation Evaluate(const metadb::MetaDatabase& db,
                          std::string_view name) const;

  /// Evaluates every task, in topological order.
  std::vector<TaskEvaluation> EvaluateAll(const metadb::MetaDatabase& db)
      const;

  /// The frontier: tasks that are ready (unblocked, not yet satisfied) —
  /// what the project should work on next.
  std::vector<std::string> NextTasks(const metadb::MetaDatabase& db) const;

  /// Overall progress: satisfied / total.
  double Progress(const metadb::MetaDatabase& db) const;

 private:
  bool GoalsSatisfied(const metadb::MetaDatabase& db, const TaskDef& task,
                      std::vector<query::Blocker>* open_goals) const;

  std::vector<TaskDef> tasks_;
};

/// Renders an evaluation as an aligned text table.
std::string FormatTaskReport(const std::vector<TaskEvaluation>& evaluations);

}  // namespace damocles::tasks
