#include "tasks/task_graph.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace damocles::tasks {

const char* TaskStatusName(TaskStatus status) noexcept {
  switch (status) {
    case TaskStatus::kBlocked:
      return "blocked";
    case TaskStatus::kReady:
      return "ready";
    case TaskStatus::kSatisfied:
      return "satisfied";
  }
  return "unknown";
}

void TaskGraph::AddTask(TaskDef task) {
  if (task.name.empty()) {
    throw IntegrityError("AddTask: task needs a name");
  }
  if (Find(task.name) != nullptr) {
    throw IntegrityError("AddTask: duplicate task '" + task.name + "'");
  }
  if (task.goals.empty()) {
    throw IntegrityError("AddTask: task '" + task.name +
                         "' has no goal conditions");
  }
  for (const std::string& dependency : task.depends_on) {
    if (Find(dependency) == nullptr) {
      throw IntegrityError("AddTask: task '" + task.name +
                           "' depends on unknown task '" + dependency + "'");
    }
  }
  // Dependencies may only reference previously added tasks, so cycles
  // are impossible by construction; the check above enforces it.
  tasks_.push_back(std::move(task));
}

const TaskDef* TaskGraph::Find(std::string_view name) const {
  for (const TaskDef& task : tasks_) {
    if (task.name == name) return &task;
  }
  return nullptr;
}

std::vector<std::string> TaskGraph::TopologicalOrder() const {
  // Insertion order is already topological (AddTask rejects forward
  // references), but we re-derive it defensively so the invariant is
  // checked rather than assumed.
  std::unordered_map<std::string, size_t> remaining;
  std::unordered_map<std::string, std::vector<std::string>> dependents;
  for (const TaskDef& task : tasks_) {
    remaining[task.name] = task.depends_on.size();
    for (const std::string& dependency : task.depends_on) {
      dependents[dependency].push_back(task.name);
    }
  }
  std::deque<std::string> frontier;
  for (const TaskDef& task : tasks_) {
    if (remaining[task.name] == 0) frontier.push_back(task.name);
  }
  std::vector<std::string> order;
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    order.push_back(current);
    for (const std::string& dependent : dependents[current]) {
      if (--remaining[dependent] == 0) frontier.push_back(dependent);
    }
  }
  if (order.size() != tasks_.size()) {
    throw IntegrityError("TopologicalOrder: dependency cycle detected");
  }
  return order;
}

bool TaskGraph::GoalsSatisfied(const metadb::MetaDatabase& db,
                               const TaskDef& task,
                               std::vector<query::Blocker>* open_goals) const {
  query::ProjectQuery q(db);
  bool satisfied = true;

  for (const GoalCondition& goal : task.goals) {
    // Scope: latest version of each matching (block, view) pair.
    const auto in_scope = [&](const metadb::MetaObject& object) {
      if (object.oid.view != goal.view) return false;
      return goal.block.empty() || object.oid.block == goal.block;
    };
    const auto scope = q.LatestVersions(in_scope);
    if (scope.empty()) {
      // The data does not exist yet: the goal cannot hold.
      satisfied = false;
      if (open_goals != nullptr) {
        open_goals->push_back(query::Blocker{
            metadb::Oid{goal.block.empty() ? "*" : goal.block, goal.view, 0},
            goal.property, "<missing>", goal.required_value});
      }
      continue;
    }
    for (const auto& match : scope) {
      const metadb::MetaObject& object = db.GetObject(match.id);
      const std::string actual = object.PropertyOr(goal.property, "");
      if (actual != goal.required_value) {
        satisfied = false;
        if (open_goals != nullptr) {
          open_goals->push_back(query::Blocker{object.oid, goal.property,
                                               actual, goal.required_value});
        }
      }
    }
  }
  return satisfied;
}

TaskEvaluation TaskGraph::Evaluate(const metadb::MetaDatabase& db,
                                   std::string_view name) const {
  const TaskDef* task = Find(name);
  if (task == nullptr) {
    throw NotFoundError("Evaluate: unknown task '" + std::string(name) + "'");
  }

  TaskEvaluation evaluation;
  evaluation.name = task->name;

  for (const std::string& dependency : task->depends_on) {
    const TaskDef* prerequisite = Find(dependency);
    if (!GoalsSatisfied(db, *prerequisite, nullptr)) {
      evaluation.open_dependencies.push_back(dependency);
    }
  }

  const bool goals_ok = GoalsSatisfied(db, *task, &evaluation.open_goals);
  if (goals_ok) {
    // A task whose data-goals hold is satisfied regardless of formal
    // dependencies — the data is the ground truth.
    evaluation.status = TaskStatus::kSatisfied;
  } else if (!evaluation.open_dependencies.empty()) {
    evaluation.status = TaskStatus::kBlocked;
  } else {
    evaluation.status = TaskStatus::kReady;
  }
  return evaluation;
}

std::vector<TaskEvaluation> TaskGraph::EvaluateAll(
    const metadb::MetaDatabase& db) const {
  std::vector<TaskEvaluation> evaluations;
  for (const std::string& name : TopologicalOrder()) {
    evaluations.push_back(Evaluate(db, name));
  }
  return evaluations;
}

std::vector<std::string> TaskGraph::NextTasks(
    const metadb::MetaDatabase& db) const {
  std::vector<std::string> ready;
  for (const TaskEvaluation& evaluation : EvaluateAll(db)) {
    if (evaluation.status == TaskStatus::kReady) {
      ready.push_back(evaluation.name);
    }
  }
  return ready;
}

double TaskGraph::Progress(const metadb::MetaDatabase& db) const {
  if (tasks_.empty()) return 1.0;
  size_t satisfied = 0;
  for (const TaskEvaluation& evaluation : EvaluateAll(db)) {
    if (evaluation.status == TaskStatus::kSatisfied) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(tasks_.size());
}

std::string FormatTaskReport(
    const std::vector<TaskEvaluation>& evaluations) {
  std::string text;
  text += "task                           status     open goals / blockers\n";
  text += "------------------------------ ---------- ----------------------\n";
  for (const TaskEvaluation& evaluation : evaluations) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-30s %-10s ",
                  evaluation.name.c_str(),
                  TaskStatusName(evaluation.status));
    text += line;
    if (evaluation.status == TaskStatus::kBlocked) {
      text += "waiting on:";
      for (const std::string& dependency : evaluation.open_dependencies) {
        text += " " + dependency;
      }
    } else if (!evaluation.open_goals.empty()) {
      text += std::to_string(evaluation.open_goals.size()) + " open";
      const query::Blocker& first = evaluation.open_goals.front();
      text += " (e.g. " + metadb::FormatOid(first.oid) + " " +
              first.property + "='" + first.actual_value + "')";
    }
    text += "\n";
  }
  return text;
}

}  // namespace damocles::tasks
