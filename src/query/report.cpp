#include "query/report.hpp"

#include <algorithm>
#include <cstdio>

namespace damocles::query {

ProjectReport BuildProjectReport(const metadb::Snapshot& snapshot) {
  const metadb::MetaDatabase& db = snapshot.db();
  ProjectQuery query(snapshot);
  ProjectReport report;

  for (const Match& match : query.LatestVersions(nullptr)) {
    const metadb::MetaObject& object = db.GetObject(match.id);
    ReportRow row;
    row.oid = object.oid;
    row.state = object.PropertyOr("state", "");
    row.uptodate = object.PropertyOr("uptodate", "");
    row.property_count = object.properties.size();
    row.out_links = db.OutLinks(match.id).size();
    row.in_links = db.InLinks(match.id).size();
    if (row.uptodate == "false") ++report.out_of_date;
    if (row.state == "true") ++report.state_ok;
    ++report.total;
    report.rows.push_back(std::move(row));
  }
  return report;
}

ProjectReport BuildProjectReport(const metadb::MetaDatabase& db) {
  return BuildProjectReport(metadb::Snapshot::Live(db));
}

std::string FormatProjectReport(const ProjectReport& report) {
  std::string out;
  out += "OID                                      state  uptodate  props  "
         "links(out/in)\n";
  out += "---------------------------------------- -----  --------  -----  "
         "-------------\n";
  char buffer[160];
  for (const ReportRow& row : report.rows) {
    std::snprintf(buffer, sizeof(buffer),
                  "%-40s %-6s %-9s %5zu  %zu/%zu\n",
                  metadb::FormatOid(row.oid).c_str(),
                  row.state.empty() ? "-" : row.state.c_str(),
                  row.uptodate.empty() ? "-" : row.uptodate.c_str(),
                  row.property_count, row.out_links, row.in_links);
    out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "total %zu  state-ok %zu  out-of-date %zu\n", report.total,
                report.state_ok, report.out_of_date);
  out += buffer;
  return out;
}

std::string FormatShadowWaveReport(const policy::ShadowWaveReport& report) {
  std::string out;
  out += "shadow-wave version " + std::to_string(report.version_id) +
         " event '" + report.event + "' " +
         events::DirectionName(report.direction) + " from " +
         metadb::FormatOid(report.start) + " depth-cap " +
         std::to_string(report.depth_cap) + "\n";
  for (const policy::ShadowWavePath& path : report.paths) {
    out += "  ";
    out += path.direct ? "DIRECT    " : "TRANSITIVE";
    out += " depth " + std::to_string(path.depth) + " " +
           metadb::FormatOid(path.target) + " rules " +
           std::to_string(path.matched_rules) + " via";
    for (const metadb::Oid& hop : path.chain) {
      out += " " + metadb::FormatOidWire(hop);
    }
    out += "\n";
  }
  out += "impacted " + std::to_string(report.paths.size()) + "  direct " +
         std::to_string(report.direct_count) + "  transitive " +
         std::to_string(report.transitive_count) +
         (report.truncated ? "  (truncated)" : "") + "\n";
  return out;
}

std::string FormatBlockers(const std::vector<Blocker>& blockers) {
  if (blockers.empty()) return "planned state reached: no blockers\n";
  std::string out = "blockers before planned state:\n";
  for (const Blocker& blocker : blockers) {
    out += "  " + metadb::FormatOid(blocker.oid) + " " + blocker.property +
           " = '" + blocker.actual_value + "' (needs '" +
           blocker.required_value + "')\n";
  }
  return out;
}

}  // namespace damocles::query
