// Human-readable project-state reports.
//
// The paper's conclusion mentions a graphical interface "to visualize
// the design state relative to its flow" as future work; this textual
// report is the library's equivalent: a per-view, per-block summary of
// the design state a project administrator reads at a glance.
#pragma once

#include <string>
#include <vector>

#include "metadb/meta_database.hpp"
#include "policy/shadow_wave.hpp"
#include "query/query.hpp"

namespace damocles::query {

/// One row of the state report.
struct ReportRow {
  metadb::Oid oid;
  std::string state;     ///< Value of `state` ("" when untracked).
  std::string uptodate;  ///< Value of `uptodate` ("" when untracked).
  size_t property_count = 0;
  size_t out_links = 0;
  size_t in_links = 0;
};

/// A formatted project report.
struct ProjectReport {
  std::vector<ReportRow> rows;  ///< Latest version of each (block, view).
  size_t out_of_date = 0;
  size_t state_ok = 0;
  size_t total = 0;
};

/// Builds a report over the latest versions of every (block, view), as
/// of the snapshot's epoch (primary form — lock-free against waves).
ProjectReport BuildProjectReport(const metadb::Snapshot& snapshot);

/// Compatibility: reports over the live database (unpinned view).
ProjectReport BuildProjectReport(const metadb::MetaDatabase& db);

/// Renders the report as an aligned text table.
std::string FormatProjectReport(const ProjectReport& report);

/// Renders the blockers of a planned state ("what still needs to be
/// modified before reaching a planned state").
std::string FormatBlockers(const std::vector<Blocker>& blockers);

/// Renders a shadow-wave impact report: one line per impacted OID with
/// its DIRECT/TRANSITIVE classification, depth, matched-rule count and
/// the link chain that would carry the event there.
std::string FormatShadowWaveReport(const policy::ShadowWaveReport& report);

}  // namespace damocles::query
