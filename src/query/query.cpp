#include "query/query.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/error.hpp"

namespace damocles::query {

using metadb::Link;
using metadb::LinkId;
using metadb::LinkKind;
using metadb::MetaObject;
using metadb::Oid;
using metadb::OidId;

namespace {

void SortMatches(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.oid < b.oid; });
}

}  // namespace

std::vector<Match> ProjectQuery::FindByView(std::string_view view) const {
  std::vector<Match> matches;
  db_->ForEachObject([&](OidId id, const MetaObject& object) {
    if (object.oid.view == view) matches.push_back(Match{id, object.oid});
  });
  SortMatches(matches);
  return matches;
}

std::vector<Match> ProjectQuery::FindByBlock(std::string_view block) const {
  std::vector<Match> matches;
  db_->ForEachObject([&](OidId id, const MetaObject& object) {
    if (object.oid.block == block) matches.push_back(Match{id, object.oid});
  });
  SortMatches(matches);
  return matches;
}

std::vector<Match> ProjectQuery::FindByProperty(std::string_view name,
                                                std::string_view value) const {
  std::vector<Match> matches;
  const std::string key(name);
  db_->ForEachObject([&](OidId id, const MetaObject& object) {
    const auto it = object.properties.find(key);
    if (it != object.properties.end() && it->second == value) {
      matches.push_back(Match{id, object.oid});
    }
  });
  SortMatches(matches);
  return matches;
}

std::vector<Match> ProjectQuery::FindWhere(
    const std::function<bool(const MetaObject&)>& predicate) const {
  std::vector<Match> matches;
  db_->ForEachObject([&](OidId id, const MetaObject& object) {
    if (predicate(object)) matches.push_back(Match{id, object.oid});
  });
  SortMatches(matches);
  return matches;
}

std::vector<Match> ProjectQuery::FindMatching(
    const blueprint::Expr& expr) const {
  std::vector<Match> matches;
  db_->ForEachObject([&](OidId id, const MetaObject& object) {
    if (expr.EvaluateBool(ResolverFor(object))) {
      matches.push_back(Match{id, object.oid});
    }
  });
  SortMatches(matches);
  return matches;
}

std::vector<Match> ProjectQuery::LatestVersions(
    const std::function<bool(const MetaObject&)>& predicate) const {
  // Collect the latest live version per (block, view).
  std::vector<Match> matches;
  std::unordered_set<std::string> seen;
  std::vector<Match> all;
  db_->ForEachObject([&](OidId id, const MetaObject& object) {
    all.push_back(Match{id, object.oid});
  });
  // Visit newest versions first so the first (block, view) hit wins.
  std::sort(all.begin(), all.end(), [](const Match& a, const Match& b) {
    if (a.oid.block != b.oid.block) return a.oid.block < b.oid.block;
    if (a.oid.view != b.oid.view) return a.oid.view < b.oid.view;
    return a.oid.version > b.oid.version;
  });
  for (const Match& match : all) {
    std::string key = match.oid.block;
    key.push_back('\0');
    key += match.oid.view;
    if (!seen.insert(std::move(key)).second) continue;
    if (predicate == nullptr || predicate(db_->GetObject(match.id))) {
      matches.push_back(match);
    }
  }
  SortMatches(matches);
  return matches;
}

std::vector<Match> ProjectQuery::OutOfDate() const {
  return FindByProperty("uptodate", "false");
}

std::optional<std::string> ProjectQuery::StateOf(const Oid& oid) const {
  const auto id = db_->FindObject(oid);
  if (!id.has_value()) {
    throw NotFoundError("StateOf: unknown OID " + FormatOid(oid));
  }
  const std::string* state = db_->GetProperty(*id, "state");
  if (state == nullptr) return std::nullopt;
  return *state;
}

std::vector<Blocker> ProjectQuery::DistanceToPlannedState(
    const std::vector<PlannedProperty>& plan,
    const std::vector<std::string>& views) const {
  const auto in_scope = [&](const MetaObject& object) {
    if (views.empty()) return true;
    return std::find(views.begin(), views.end(), object.oid.view) !=
           views.end();
  };
  const std::vector<Match> scope = LatestVersions(in_scope);

  std::vector<Blocker> blockers;
  for (const Match& match : scope) {
    const MetaObject& object = db_->GetObject(match.id);
    for (const PlannedProperty& planned : plan) {
      const auto it = object.properties.find(planned.property);
      if (it == object.properties.end()) continue;  // Not tracked here.
      if (it->second != planned.required_value) {
        blockers.push_back(Blocker{object.oid, planned.property, it->second,
                                   planned.required_value});
      }
    }
  }
  return blockers;
}

std::vector<Match> ProjectQuery::HierarchyMembers(const Oid& root) const {
  const auto root_id = db_->FindObject(root);
  if (!root_id.has_value()) {
    throw NotFoundError("HierarchyMembers: unknown OID " + FormatOid(root));
  }
  std::vector<Match> matches;
  std::deque<OidId> frontier{*root_id};
  std::unordered_set<uint32_t> visited{root_id->value()};
  while (!frontier.empty()) {
    const OidId current = frontier.front();
    frontier.pop_front();
    matches.push_back(Match{current, db_->GetObject(current).oid});
    for (const LinkId link_id : db_->OutLinks(current)) {
      const Link& link = db_->GetLink(link_id);
      if (link.kind != LinkKind::kUse) continue;
      if (visited.insert(link.to.value()).second) {
        frontier.push_back(link.to);
      }
    }
  }
  return matches;
}

std::vector<Match> ProjectQuery::DerivationSources(const Oid& oid) const {
  const auto start = db_->FindObject(oid);
  if (!start.has_value()) {
    throw NotFoundError("DerivationSources: unknown OID " + FormatOid(oid));
  }
  std::vector<Match> matches;
  std::deque<OidId> frontier{*start};
  std::unordered_set<uint32_t> visited{start->value()};
  while (!frontier.empty()) {
    const OidId current = frontier.front();
    frontier.pop_front();
    for (const LinkId link_id : db_->InLinks(current)) {
      const Link& link = db_->GetLink(link_id);
      if (link.kind != LinkKind::kDerive) continue;
      if (visited.insert(link.from.value()).second) {
        matches.push_back(Match{link.from, db_->GetObject(link.from).oid});
        frontier.push_back(link.from);
      }
    }
  }
  SortMatches(matches);
  return matches;
}

metadb::Configuration ProjectQuery::ToConfiguration(
    std::string name, const std::vector<Match>& matches,
    int64_t timestamp) const {
  metadb::Configuration config;
  config.name = std::move(name);
  config.built_from = "query";
  config.created_at = timestamp;
  config.oids.reserve(matches.size());
  for (const Match& match : matches) config.oids.push_back(match.id);
  return config;
}

blueprint::VariableResolver ProjectQuery::ResolverFor(
    const MetaObject& object) const {
  return [&object](std::string_view name) -> std::string {
    if (name == "block") return object.oid.block;
    if (name == "view") return object.oid.view;
    if (name == "version") return std::to_string(object.oid.version);
    const auto it = object.properties.find(std::string(name));
    return it == object.properties.end() ? std::string() : it->second;
  };
}

}  // namespace damocles::query
