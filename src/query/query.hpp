// Project-state queries over the meta-database.
//
// Paper §1: "Designers can retrieve the state of the project by
// performing queries. Therefore, designers know exactly what data still
// needs to be modified before reaching a planned state in the project."
//
// The query layer is strictly read-only and consumes a metadb::Snapshot
// — an epoch-stamped immutable read handle (metadb/snapshot.hpp) — so
// queries never perturb tracking state AND never contend with
// committing waves: thousands of sessions can query a pinned epoch
// while propagation runs. Compatibility overloads taking
// `const MetaDatabase&` wrap the live database unpinned for
// single-threaded callers.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blueprint/expr.hpp"
#include "metadb/config_builder.hpp"
#include "metadb/meta_database.hpp"

namespace damocles::query {

/// One query hit.
struct Match {
  metadb::OidId id;
  metadb::Oid oid;
};

/// A (property, required value) pair describing part of a planned state.
struct PlannedProperty {
  std::string property;
  std::string required_value;
};

/// An OID that still blocks a planned state, with the reason.
struct Blocker {
  metadb::Oid oid;
  std::string property;
  std::string actual_value;
  std::string required_value;
};

/// Read-only query interface bound to one snapshot of a meta-database.
/// The snapshot is pinned for the query object's lifetime: every query
/// answers from the same epoch, however many waves commit meanwhile.
class ProjectQuery {
 public:
  /// Primary form: bind to a pinned (or live) snapshot.
  explicit ProjectQuery(metadb::Snapshot snapshot)
      : snap_(std::move(snapshot)), db_(&snap_.db()) {}

  /// Compatibility: wraps the live database unpinned (callers that
  /// serialize reads against mutations themselves, epoch() == 0).
  explicit ProjectQuery(const metadb::MetaDatabase& db)
      : snap_(metadb::Snapshot::Live(db)), db_(&db) {}

  /// Epoch of the bound snapshot (0 for live views).
  uint64_t epoch() const noexcept { return snap_.epoch(); }

  // --- Object finders -----------------------------------------------------

  /// All live objects of a view type, ordered by (block, version).
  std::vector<Match> FindByView(std::string_view view) const;

  /// All live views of a block, ordered by (view, version).
  std::vector<Match> FindByBlock(std::string_view block) const;

  /// Live objects whose property `name` equals `value`.
  std::vector<Match> FindByProperty(std::string_view name,
                                    std::string_view value) const;

  /// Live objects satisfying an arbitrary predicate.
  std::vector<Match> FindWhere(
      const std::function<bool(const metadb::MetaObject&)>& predicate) const;

  /// Live objects for which the blueprint expression evaluates true.
  /// $variables resolve to the object's properties ($block/$view/
  /// $version are built-in).
  std::vector<Match> FindMatching(const blueprint::Expr& expr) const;

  /// Only the latest version of each (block, view), restricted to
  /// objects matching `predicate` (pass nullptr for all).
  std::vector<Match> LatestVersions(
      const std::function<bool(const metadb::MetaObject&)>& predicate) const;

  // --- Design-state queries ---------------------------------------------

  /// Objects whose `uptodate` property is "false" — the paper's central
  /// change-tracking question.
  std::vector<Match> OutOfDate() const;

  /// Value of the conventional `state` property, or nullopt when the
  /// object has none.
  std::optional<std::string> StateOf(const metadb::Oid& oid) const;

  /// The "distance to a planned state": every (object, property) in
  /// scope whose value differs from the plan. Scope = latest versions
  /// of the given views (empty = all views).
  std::vector<Blocker> DistanceToPlannedState(
      const std::vector<PlannedProperty>& plan,
      const std::vector<std::string>& views) const;

  // --- Structure queries -----------------------------------------------------

  /// The hierarchy below `root` through use links (root included).
  std::vector<Match> HierarchyMembers(const metadb::Oid& root) const;

  /// Objects from which `oid` is (transitively) derived, following
  /// derive links upstream.
  std::vector<Match> DerivationSources(const metadb::Oid& oid) const;

  /// Builds a configuration from a query, ready to be saved — the
  /// paper's "results of volume queries" use of configurations.
  metadb::Configuration ToConfiguration(
      std::string name, const std::vector<Match>& matches,
      int64_t timestamp) const;

 private:
  blueprint::VariableResolver ResolverFor(const metadb::MetaObject& object)
      const;

  metadb::Snapshot snap_;            ///< Pins the version being queried.
  const metadb::MetaDatabase* db_;   ///< &snap_.db() (never null).
};

}  // namespace damocles::query
