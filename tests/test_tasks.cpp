#include "tasks/task_graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"

namespace damocles::tasks {
namespace {

using metadb::Oid;
using testutil::MakeEdtcServer;

TaskDef SimpleTask(const std::string& name,
                   std::vector<GoalCondition> goals,
                   std::vector<std::string> deps = {}) {
  TaskDef task;
  task.name = name;
  task.goals = std::move(goals);
  task.depends_on = std::move(deps);
  return task;
}

class TaskGraphTest : public ::testing::Test {
 protected:
  TaskGraphTest() : server_(MakeEdtcServer()) {
    graph_.AddTask(SimpleTask(
        "model_validated",
        {{"CPU", "HDL_model", "sim_result", "good"}}));
    graph_.AddTask(SimpleTask(
        "schematic_current",
        {{"", "schematic", "uptodate", "true"}}, {"model_validated"}));
    graph_.AddTask(SimpleTask(
        "netlist_simulated",
        {{"CPU", "netlist", "sim_result", "good"}},
        {"schematic_current"}));
  }

  std::unique_ptr<engine::ProjectServer> server_;
  TaskGraph graph_;
};

TEST_F(TaskGraphTest, RejectsBadDefinitions) {
  TaskGraph graph;
  EXPECT_THROW(graph.AddTask(SimpleTask("", {{"b", "v", "p", "x"}})),
               IntegrityError);
  EXPECT_THROW(graph.AddTask(SimpleTask("no_goals", {})), IntegrityError);
  graph.AddTask(SimpleTask("a", {{"b", "v", "p", "x"}}));
  EXPECT_THROW(graph.AddTask(SimpleTask("a", {{"b", "v", "p", "x"}})),
               IntegrityError);
  EXPECT_THROW(
      graph.AddTask(SimpleTask("b", {{"b", "v", "p", "x"}}, {"ghost"})),
      IntegrityError);
}

TEST_F(TaskGraphTest, TopologicalOrderRespectsDependencies) {
  const auto order = graph_.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "model_validated");
  EXPECT_EQ(order[1], "schematic_current");
  EXPECT_EQ(order[2], "netlist_simulated");
}

TEST_F(TaskGraphTest, MissingDataMeansGoalOpen) {
  const auto evaluation =
      graph_.Evaluate(server_->database(), "model_validated");
  EXPECT_EQ(evaluation.status, TaskStatus::kReady);
  ASSERT_EQ(evaluation.open_goals.size(), 1u);
  EXPECT_EQ(evaluation.open_goals[0].actual_value, "<missing>");
}

TEST_F(TaskGraphTest, DependentsAreBlockedUntilPrerequisiteHolds) {
  server_->CheckIn("CPU", "HDL_model", "m", "alice");
  const auto evaluation =
      graph_.Evaluate(server_->database(), "schematic_current");
  EXPECT_EQ(evaluation.status, TaskStatus::kBlocked);
  ASSERT_EQ(evaluation.open_dependencies.size(), 1u);
  EXPECT_EQ(evaluation.open_dependencies[0], "model_validated");
}

TEST_F(TaskGraphTest, TasksSatisfyAsTheDataArrives) {
  tools::ToolScheduler scheduler(*server_);
  tools::Netlister netlister(*server_);
  scheduler.InstallStandardScripts(netlister);
  tools::HdlEditor editor(*server_);
  tools::SynthesisTool synthesis(*server_);

  EXPECT_EQ(graph_.Progress(server_->database()), 0.0);
  EXPECT_EQ(graph_.NextTasks(server_->database()),
            std::vector<std::string>{"model_validated"});

  editor.Edit("CPU", "model", "alice");
  server_->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                          "alice");
  EXPECT_EQ(graph_.Evaluate(server_->database(), "model_validated").status,
            TaskStatus::kSatisfied);

  ASSERT_TRUE(synthesis.Synthesize("CPU", {"REG"}, "bob").has_value());
  EXPECT_EQ(graph_.Evaluate(server_->database(), "schematic_current").status,
            TaskStatus::kSatisfied);

  // Netlists exist but have not passed simulation.
  const auto netlist_eval =
      graph_.Evaluate(server_->database(), "netlist_simulated");
  EXPECT_EQ(netlist_eval.status, TaskStatus::kReady);

  server_->SubmitWireLine("postEvent nl_sim up CPU,netlist,1 good", "bob");
  EXPECT_EQ(graph_.Evaluate(server_->database(), "netlist_simulated").status,
            TaskStatus::kSatisfied);
  EXPECT_EQ(graph_.Progress(server_->database()), 1.0);
  EXPECT_TRUE(graph_.NextTasks(server_->database()).empty());
}

TEST_F(TaskGraphTest, ChangePropagationReopensTasks) {
  tools::ToolScheduler scheduler(*server_);
  tools::Netlister netlister(*server_);
  scheduler.InstallStandardScripts(netlister);
  tools::HdlEditor editor(*server_);
  tools::SynthesisTool synthesis(*server_);

  editor.Edit("CPU", "model", "alice");
  server_->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                          "alice");
  synthesis.Synthesize("CPU", {"REG"}, "bob");
  ASSERT_EQ(graph_.Evaluate(server_->database(), "schematic_current").status,
            TaskStatus::kSatisfied);

  // A new HDL version invalidates the schematics — the task reopens, and
  // since the new model is unsimulated, it is blocked again.
  editor.Edit("CPU", "model rev2", "alice");
  const auto evaluation =
      graph_.Evaluate(server_->database(), "schematic_current");
  EXPECT_EQ(evaluation.status, TaskStatus::kBlocked);
  EXPECT_FALSE(evaluation.open_goals.empty());
}

TEST_F(TaskGraphTest, WildcardBlockCoversEveryInstance) {
  server_->CheckIn("CPU", "schematic", "s", "bob");
  server_->CheckIn("REG", "schematic", "s", "bob");
  TaskGraph graph;
  graph.AddTask(SimpleTask("all_schematics",
                           {{"", "schematic", "uptodate", "true"}}));
  EXPECT_EQ(graph.Evaluate(server_->database(), "all_schematics").status,
            TaskStatus::kSatisfied);

  server_->Submit([] {
    events::EventMessage event;
    event.name = "outofdate";
    event.direction = events::Direction::kDown;
    event.target = Oid{"REG", "schematic", 1};
    return event;
  }());
  const auto evaluation =
      graph.Evaluate(server_->database(), "all_schematics");
  EXPECT_EQ(evaluation.status, TaskStatus::kReady);
  ASSERT_EQ(evaluation.open_goals.size(), 1u);
  EXPECT_EQ(evaluation.open_goals[0].oid.block, "REG");
}

TEST_F(TaskGraphTest, EvaluateUnknownTaskThrows) {
  EXPECT_THROW(graph_.Evaluate(server_->database(), "ghost"), NotFoundError);
}

TEST_F(TaskGraphTest, ReportFormatsAllStates) {
  server_->CheckIn("CPU", "HDL_model", "m", "alice");
  const std::string text =
      FormatTaskReport(graph_.EvaluateAll(server_->database()));
  EXPECT_NE(text.find("model_validated"), std::string::npos);
  EXPECT_NE(text.find("ready"), std::string::npos);
  EXPECT_NE(text.find("blocked"), std::string::npos);
  EXPECT_NE(text.find("waiting on: model_validated"), std::string::npos);
}

TEST(TaskGraphEmpty, ProgressOfEmptyGraphIsComplete) {
  TaskGraph graph;
  metadb::MetaDatabase db;
  EXPECT_EQ(graph.Progress(db), 1.0);
  EXPECT_TRUE(graph.EvaluateAll(db).empty());
}

}  // namespace
}  // namespace damocles::tasks
