// Tests for the symbol-interned hot path: compiled per-(view, event)
// rule tables, SymbolId-keyed receiver lookups and copy-free wave
// delivery must behave identically to the interpreted string-comparing
// engine — pinned by differential journals across all three engine
// generations (scan / indexed / interned) — and the interner-backed
// index must rekey correctly through retemplating, endpoint moves and
// blueprint reloads (SymbolIds never go stale: the table only grows).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/symbol.hpp"
#include "engine/propagation_index.hpp"
#include "engine/project_server.hpp"
#include "engine/run_time_engine.hpp"
#include "metadb/meta_database.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"
#include "workload/generators.hpp"

namespace damocles {
namespace {

using engine::EngineStats;
using engine::ProjectServer;
using engine::PropagationIndex;
using engine::RunTimeEngine;
using events::Direction;
using metadb::CarryPolicy;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::OidId;

/// The three engine generations under differential test.
enum class Mode { kScan, kIndexed, kInterned };

engine::ServerOptions ModeOptions(Mode mode) {
  engine::ServerOptions options;
  options.engine.use_propagation_index = mode != Mode::kScan;
  options.engine.interned_fast_path = mode == Mode::kInterned;
  return options;
}

void ExpectSameBehaviour(const ProjectServer& a, const ProjectServer& b,
                         const std::string& label) {
  EXPECT_EQ(a.engine().journal().Dump(), b.engine().journal().Dump()) << label;
  const EngineStats& sa = a.engine().stats();
  const EngineStats& sb = b.engine().stats();
  EXPECT_EQ(sa.events_processed, sb.events_processed) << label;
  EXPECT_EQ(sa.propagated_deliveries, sb.propagated_deliveries) << label;
  EXPECT_EQ(sa.wave_deliveries, sb.wave_deliveries) << label;
  EXPECT_EQ(sa.waves_started, sb.waves_started) << label;
  EXPECT_EQ(sa.wave_batches, sb.wave_batches) << label;
  EXPECT_EQ(sa.assign_actions, sb.assign_actions) << label;
  EXPECT_EQ(sa.exec_actions, sb.exec_actions) << label;
  EXPECT_EQ(sa.notify_actions, sb.notify_actions) << label;
  EXPECT_EQ(sa.post_actions, sb.post_actions) << label;
  EXPECT_EQ(sa.reevaluations, sb.reevaluations) << label;
  EXPECT_EQ(sa.property_writes, sb.property_writes) << label;
  EXPECT_EQ(sa.max_wave_extent, sb.max_wave_extent) << label;
}

/// Randomized blueprint + event-trace differential: the same stochastic
/// design session must journal identically whether rules are matched by
/// the compiled tables or the interpreted scans, and whether waves
/// expand through the interned index, the string-keyed shim or raw
/// adjacency scans.
TEST(InternedHotPath, RandomizedSessionsMatchAcrossAllThreeEngines) {
  for (const uint64_t seed : {7u, 21u, 1234u}) {
    workload::FlowSpec flow;
    flow.n_views = 3 + static_cast<int>(seed % 3);
    flow.propagation_cutoff = (seed % 2) == 0 ? -1 : 1;
    flow.post_outofdate_on_ckin = true;

    const auto run = [&](Mode mode) {
      auto server =
          std::make_unique<ProjectServer>("diff", ModeOptions(mode));
      server->InitializeBlueprint(workload::MakeFlowBlueprint(flow, "diff"));
      std::vector<std::string> blocks;
      for (int i = 0; i < 3; ++i) {
        blocks.push_back("blk" + std::to_string(i));
        workload::InstantiateFlow(*server, flow, blocks.back());
      }
      workload::TraceSpec trace;
      trace.n_actions = 120;
      trace.seed = seed;
      workload::RunDesignSession(*server, flow, blocks, trace);
      return server;
    };

    const auto scan = run(Mode::kScan);
    const auto indexed = run(Mode::kIndexed);
    const auto interned = run(Mode::kInterned);
    const std::string label = "seed " + std::to_string(seed);
    ExpectSameBehaviour(*interned, *indexed, label + " interned vs indexed");
    ExpectSameBehaviour(*interned, *scan, label + " interned vs scan");

    // Each engine took its declared path.
    EXPECT_GT(interned->engine().stats().rule_table_hits, 0u) << label;
    EXPECT_EQ(indexed->engine().stats().rule_table_hits, 0u) << label;
    EXPECT_GT(indexed->engine().stats().index_lookups, 0u) << label;
    EXPECT_GT(scan->engine().stats().links_scanned, 0u) << label;
    EXPECT_EQ(scan->engine().stats().index_lookups, 0u) << label;
  }
}

/// The EDTC workload (exec/notify/post rules, phase switches, carry
/// moves) through all three engines, including blueprint loosening and
/// re-tightening mid-run.
TEST(InternedHotPath, EdtcPhaseSwitchMatchesAcrossAllThreeEngines) {
  const auto run = [](Mode mode) {
    auto server = std::make_unique<ProjectServer>("edtc", ModeOptions(mode));
    server->InitializeBlueprint(workload::EdtcBlueprintText());
    workload::HierarchySpec spec;
    spec.depth = 3;
    spec.fanout = 2;
    spec.view = "HDL_model";
    spec.root_block = "CPU";
    workload::BuildHierarchy(*server, spec);
    for (int round = 0; round < 3; ++round) {
      server->CheckIn("CPU", "HDL_model", "rev", "alice");
      server->CheckIn("CPU", "schematic", "rev", "bob");
      server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model," +
                                 std::to_string(round + 2) + " good",
                             "alice");
    }
    server->InitializeBlueprint(R"(blueprint loosened
                                   view default
                                   endview
                                   endblueprint)");
    server->CheckIn("CPU", "HDL_model", "loose rev", "alice");
    server->InitializeBlueprint(workload::EdtcBlueprintText());
    server->CheckIn("CPU", "HDL_model", "strict rev", "alice");
    return server;
  };

  const auto scan = run(Mode::kScan);
  const auto indexed = run(Mode::kIndexed);
  const auto interned = run(Mode::kInterned);
  ExpectSameBehaviour(*interned, *indexed, "interned vs indexed");
  ExpectSameBehaviour(*interned, *scan, "interned vs scan");
}

// --- Compiled rule tables --------------------------------------------------

constexpr const char* kOrderBlueprint = R"(blueprint order
view default
  when mark do tag = base done
endview
view sch
  when mark do tag = override done
endview
endblueprint)";

/// Default-view rules run before the specific view's, so the specific
/// assign must win — on both matchers.
TEST(InternedHotPath, CompiledTablesKeepDefaultBeforeSpecificOrder) {
  for (const Mode mode : {Mode::kInterned, Mode::kIndexed}) {
    ProjectServer server("order", ModeOptions(mode));
    server.InitializeBlueprint(kOrderBlueprint);
    server.CheckIn("blk", "sch", "new", "t");
    server.SubmitWireLine("postEvent mark down blk,sch,1", "t");
    EXPECT_EQ(testutil::LatestProp(server, "blk", "sch", "tag"), "override");
  }
}

/// Views the blueprint does not track still run default-view rules
/// through the default-only compiled table.
TEST(InternedHotPath, UntrackedViewResolvesToDefaultRules) {
  ProjectServer server("untracked", ModeOptions(Mode::kInterned));
  server.InitializeBlueprint(kOrderBlueprint);
  server.CheckIn("blk", "layout", "new", "t");  // 'layout' is untracked.
  server.SubmitWireLine("postEvent mark down blk,layout,1", "t");
  EXPECT_EQ(testutil::LatestProp(server, "blk", "layout", "tag"), "base");
  EXPECT_GT(server.engine().stats().rule_table_hits, 0u);
}

/// Deliveries for events no rule reacts to are counted as table misses,
/// and the interner-size gauge tracks the symbol table.
TEST(InternedHotPath, StatsCountTableHitsMissesAndInternerSize) {
  ProjectServer server("stats", ModeOptions(Mode::kInterned));
  server.InitializeBlueprint(kOrderBlueprint);
  server.CheckIn("blk", "sch", "new", "t");
  server.SubmitWireLine("postEvent nobodycares down blk,sch,1", "t");
  const EngineStats& stats = server.engine().stats();
  EXPECT_GT(stats.rule_table_misses, 0u);
  EXPECT_EQ(stats.interner_symbols, server.engine().symbols().size());
  EXPECT_NE(server.engine().symbols().Find("nobodycares"),
            SymbolTable::kNoSymbol);
}

/// Reloading a blueprint mid-project rebinds every cached rule table;
/// the stale-binding regression this pins: an OID that already resolved
/// its (view, event) tables against blueprint A must re-resolve against
/// blueprint B, while its SymbolIds stay valid.
TEST(InternedHotPath, BlueprintReloadRebindsRuleTables) {
  ProjectServer server("reload", ModeOptions(Mode::kInterned));
  server.InitializeBlueprint(kOrderBlueprint);
  server.CheckIn("blk", "sch", "new", "t");
  server.SubmitWireLine("postEvent mark down blk,sch,1", "t");
  ASSERT_EQ(testutil::LatestProp(server, "blk", "sch", "tag"), "override");

  const SymbolId mark_before = server.engine().symbols().Find("mark");
  ASSERT_NE(mark_before, SymbolTable::kNoSymbol);

  server.InitializeBlueprint(R"(blueprint order2
view sch
  when mark do tag = reloaded done
endview
endblueprint)");
  server.SubmitWireLine("postEvent mark down blk,sch,1", "t");
  EXPECT_EQ(testutil::LatestProp(server, "blk", "sch", "tag"), "reloaded");
  // Symbols are stable across reloads (the interner only grows).
  EXPECT_EQ(server.engine().symbols().Find("mark"), mark_before);
}

// --- Interner-backed propagation index rekeying ----------------------------

/// A database + engine pair on the interned fast path.
struct Fixture {
  MetaDatabase db;
  SimClock clock;
  RunTimeEngine engine{db, clock};
};

std::string MustBeConsistent(const RunTimeEngine& engine,
                             const MetaDatabase& db) {
  std::string diff;
  return engine.propagation_index().ConsistentWith(db, &diff) ? std::string()
                                                              : diff;
}

/// The SymbolId overload is the hot path; it must agree with the
/// string shim bucket for bucket.
TEST(InternedHotPath, SymbolKeyedReceiversMatchStringShim) {
  Fixture f;
  const OidId a = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  f.db.CreateLink(LinkKind::kDerive, a, b, {"edit", "ok"}, "",
                  CarryPolicy::kNone);

  const PropagationIndex& index = f.engine.propagation_index();
  const SymbolId edit = index.symbols().Find("edit");
  ASSERT_NE(edit, SymbolTable::kNoSymbol);
  ASSERT_NE(index.Receivers(a, Direction::kDown, edit), nullptr);
  EXPECT_EQ(index.Receivers(a, Direction::kDown, edit),
            index.Receivers(a, Direction::kDown, "edit"));
  // Unknown symbol / unknown string: both overloads say "no receivers".
  EXPECT_EQ(index.Receivers(a, Direction::kDown, SymbolId{0xdeadu}), nullptr);
  EXPECT_EQ(index.Receivers(a, Direction::kDown, "nosuch"), nullptr);
}

/// Endpoint moves rekey the packed (OID, direction, SymbolId) buckets:
/// the old source loses them, the new source serves them under the SAME
/// SymbolId.
TEST(InternedHotPath, EndpointMoveRekeysSymbolBuckets) {
  Fixture f;
  const OidId a1 = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  const metadb::LinkId link = f.db.CreateLink(LinkKind::kDerive, a1, b,
                                              {"edit"}, "", CarryPolicy::kMove);
  const OidId a2 = f.db.CreateNextVersion("a", "sch", "t", 1);
  const SymbolId edit = f.engine.propagation_index().symbols().Find("edit");
  ASSERT_NE(edit, SymbolTable::kNoSymbol);

  f.db.MoveLinkEndpoint(link, /*endpoint_from=*/true, a2);
  const PropagationIndex& index = f.engine.propagation_index();
  EXPECT_EQ(index.Receivers(a1, Direction::kDown, edit), nullptr);
  ASSERT_NE(index.Receivers(a2, Direction::kDown, edit), nullptr);
  EXPECT_EQ(index.Receivers(a2, Direction::kDown, edit)->front().neighbor, b);
  ASSERT_NE(index.Receivers(b, Direction::kUp, edit), nullptr);
  EXPECT_EQ(index.Receivers(b, Direction::kUp, edit)->front().neighbor, a2);
  EXPECT_EQ(MustBeConsistent(f.engine, f.db), "");
}

/// RetemplateLinks rewrites PROPAGATE lists wholesale (the paper's
/// loosen/tighten phase switch); symbol-keyed buckets must follow, and
/// SymbolIds interned under the strict blueprint must still resolve the
/// re-tightened index (stale-SymbolId regression).
TEST(InternedHotPath, RetemplateAndReloadRekeySymbolBuckets) {
  workload::FlowSpec flow;
  flow.n_views = 3;
  const std::string strict = workload::MakeFlowBlueprint(flow, "strict");
  ProjectServer server("rekey", ModeOptions(Mode::kInterned));
  server.InitializeBlueprint(strict);
  const metadb::Oid golden = workload::InstantiateFlow(server, flow, "blk");
  const OidId golden_id = *server.database().FindObject(golden);

  const PropagationIndex& index = server.engine().propagation_index();
  const SymbolId outofdate = index.symbols().Find("outofdate");
  ASSERT_NE(outofdate, SymbolTable::kNoSymbol);
  ASSERT_NE(index.Receivers(golden_id, Direction::kDown, outofdate), nullptr);
  ASSERT_EQ(MustBeConsistent(server.engine(), server.database()), "");

  // Loosen: the empty blueprint's retemplating clears every PROPAGATE
  // list, so the symbol-keyed bucket must vanish.
  server.InitializeBlueprint(R"(blueprint loose
                                view default
                                endview
                                endblueprint)");
  EXPECT_EQ(index.Receivers(golden_id, Direction::kDown, outofdate), nullptr);
  EXPECT_EQ(MustBeConsistent(server.engine(), server.database()), "");

  // Tighten again: the pre-loosening SymbolId serves the rebuilt index.
  server.InitializeBlueprint(strict);
  ASSERT_NE(index.Receivers(golden_id, Direction::kDown, outofdate), nullptr);
  EXPECT_EQ(index.symbols().Find("outofdate"), outofdate);
  EXPECT_EQ(MustBeConsistent(server.engine(), server.database()), "");
}

}  // namespace
}  // namespace damocles
