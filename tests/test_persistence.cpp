#include "metadb/persistence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "metadb/config_builder.hpp"

namespace damocles::metadb {
namespace {

MetaDatabase MakeSampleDatabase() {
  MetaDatabase db;
  const OidId hdl1 = db.CreateNextVersion("cpu", "HDL_model", "alice", 10);
  const OidId hdl2 = db.CreateNextVersion("cpu", "HDL_model", "alice", 20);
  const OidId sch = db.CreateNextVersion("cpu", "schematic", "bob", 30);
  db.SetProperty(hdl1, "sim_result", "4 errors");
  db.SetProperty(hdl2, "sim_result", "good");
  db.SetProperty(sch, "uptodate", "true");
  db.SetProperty(sch, "note", "has \"quotes\" and \\backslash");
  const LinkId link = db.CreateLink(LinkKind::kDerive, hdl2, sch,
                                    {"outofdate", "lvs"}, "derived",
                                    CarryPolicy::kMove);
  db.GetLinkMutable(link).properties["PROPAGATE"] = "outofdate,lvs";

  Configuration config = BuildFullCheckpoint(db, "snap", 40);
  db.SaveConfiguration(std::move(config));

  // A tombstone, to prove dead slots survive the round trip.
  const OidId doomed = db.CreateNextVersion("tmp", "scratch", "bob", 50);
  db.DeleteObject(doomed);
  return db;
}

TEST(Persistence, RoundTripPreservesEverything) {
  const MetaDatabase original = MakeSampleDatabase();
  const std::string text = SaveDatabaseString(original);
  const MetaDatabase loaded = LoadDatabaseString(text);

  EXPECT_EQ(loaded.ObjectSlotCount(), original.ObjectSlotCount());
  EXPECT_EQ(loaded.LinkSlotCount(), original.LinkSlotCount());
  EXPECT_EQ(loaded.ConfigurationSlotCount(),
            original.ConfigurationSlotCount());

  // Objects keep identity, properties, liveness.
  for (size_t i = 0; i < original.ObjectSlotCount(); ++i) {
    const MetaObject& a = original.GetObject(OidId(uint32_t(i)));
    const MetaObject& b = loaded.GetObject(OidId(uint32_t(i)));
    EXPECT_EQ(a.oid, b.oid);
    EXPECT_EQ(a.properties, b.properties);
    EXPECT_EQ(a.created_at, b.created_at);
    EXPECT_EQ(a.created_by, b.created_by);
    EXPECT_EQ(a.alive, b.alive);
  }
  // Links keep endpoints, kinds, carry, PROPAGATE.
  for (size_t i = 0; i < original.LinkSlotCount(); ++i) {
    const Link& a = original.GetLink(LinkId(uint32_t(i)));
    const Link& b = loaded.GetLink(LinkId(uint32_t(i)));
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.propagates, b.propagates);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.carry, b.carry);
    EXPECT_EQ(a.properties, b.properties);
    EXPECT_EQ(a.alive, b.alive);
  }
  // Configurations keep their handle sets.
  const Configuration& config =
      loaded.GetConfiguration(*loaded.FindConfiguration("snap"));
  EXPECT_EQ(config.oids.size(), 3u);
  EXPECT_EQ(config.links.size(), 1u);
}

TEST(Persistence, SaveIsDeterministic) {
  const MetaDatabase db = MakeSampleDatabase();
  EXPECT_EQ(SaveDatabaseString(db), SaveDatabaseString(db));
}

TEST(Persistence, DoubleRoundTripIsStable) {
  const MetaDatabase db = MakeSampleDatabase();
  const std::string once = SaveDatabaseString(db);
  const std::string twice = SaveDatabaseString(LoadDatabaseString(once));
  EXPECT_EQ(once, twice);
}

TEST(Persistence, LoadedDatabaseRemainsUsable) {
  MetaDatabase loaded =
      LoadDatabaseString(SaveDatabaseString(MakeSampleDatabase()));
  // Indexes were rebuilt: lookups and new versions work.
  EXPECT_TRUE(loaded.FindObject(Oid{"cpu", "HDL_model", 2}).has_value());
  const OidId v3 = loaded.CreateNextVersion("cpu", "HDL_model", "carol", 99);
  EXPECT_EQ(loaded.GetObject(v3).oid.version, 3);
  // Adjacency was rebuilt.
  const auto sch = loaded.FindObject(Oid{"cpu", "schematic", 1});
  ASSERT_TRUE(sch.has_value());
  EXPECT_EQ(loaded.InLinks(*sch).size(), 1u);
}

TEST(Persistence, RejectsMissingMagic) {
  EXPECT_THROW(LoadDatabaseString("not a database\n"), WireFormatError);
  EXPECT_THROW(LoadDatabaseString(""), WireFormatError);
}

TEST(Persistence, RejectsTruncatedInput) {
  const std::string text = SaveDatabaseString(MakeSampleDatabase());
  // Cut the file somewhere in the middle of the object section.
  const std::string truncated = text.substr(0, text.size() / 3);
  EXPECT_THROW(LoadDatabaseString(truncated), WireFormatError);
}

TEST(Persistence, RejectsGarbageLines) {
  std::string text = SaveDatabaseString(MakeSampleDatabase());
  text.insert(text.find("links "), "gibberish here\n");
  EXPECT_THROW(LoadDatabaseString(text), WireFormatError);
}

TEST(Persistence, ErrorsNameLineAndSection) {
  // A checkpoint torn mid-link-body reports both where (line) and what
  // part of the file (section) failed — the operator debugging a
  // recovery fallback needs both.
  const std::string text = SaveDatabaseString(MakeSampleDatabase());
  const std::string torn = text.substr(0, text.find("propagates"));
  try {
    LoadDatabaseString(torn);
    FAIL() << "expected WireFormatError";
  } catch (const WireFormatError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line "), std::string::npos) << what;
    EXPECT_NE(what.find("(links)"), std::string::npos) << what;
  }
  // Truncation inside the object section names that section.
  try {
    LoadDatabaseString(text.substr(0, text.find("created")));
    FAIL() << "expected WireFormatError";
  } catch (const WireFormatError& error) {
    EXPECT_NE(std::string(error.what()).find("(objects)"), std::string::npos)
        << error.what();
  }
}

TEST(Persistence, RejectsGarbageSuffix) {
  // Text appended past the configs section (e.g. a torn write that
  // doubled part of the file) must fail loudly, not load silently.
  const std::string text = SaveDatabaseString(MakeSampleDatabase());
  try {
    LoadDatabaseString(text + "object 99 alive=1\n");
    FAIL() << "expected WireFormatError";
  } catch (const WireFormatError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("trailing content"), std::string::npos) << what;
    EXPECT_NE(what.find("(configs)"), std::string::npos) << what;
  }
  EXPECT_THROW(LoadDatabaseString(text + text), WireFormatError);
}

// --- Adversarial round trips (checkpoint-shaped databases) ------------------

/// Objects and links must keep their exact slot ids across a round
/// trip: recovery rebuilds adjacency from raw OidId/LinkId values, so a
/// shifted slot silently rewires the design graph.
void ExpectBitIdenticalIds(const MetaDatabase& original,
                           const MetaDatabase& loaded) {
  ASSERT_EQ(loaded.ObjectSlotCount(), original.ObjectSlotCount());
  ASSERT_EQ(loaded.LinkSlotCount(), original.LinkSlotCount());
  for (size_t i = 0; i < original.ObjectSlotCount(); ++i) {
    const MetaObject& object = original.GetObject(OidId(uint32_t(i)));
    if (!object.alive) continue;
    const auto found = loaded.FindObject(object.oid);
    ASSERT_TRUE(found.has_value()) << "slot " << i;
    EXPECT_EQ(found->value(), uint32_t(i));
  }
  for (size_t i = 0; i < original.LinkSlotCount(); ++i) {
    const Link& a = original.GetLink(LinkId(uint32_t(i)));
    const Link& b = loaded.GetLink(LinkId(uint32_t(i)));
    EXPECT_EQ(a.from.value(), b.from.value()) << "link slot " << i;
    EXPECT_EQ(a.to.value(), b.to.value()) << "link slot " << i;
  }
}

TEST(PersistenceAdversarial, EmptyDatabaseRoundTrips) {
  const MetaDatabase empty;
  const std::string once = SaveDatabaseString(empty);
  const MetaDatabase loaded = LoadDatabaseString(once);
  EXPECT_EQ(loaded.ObjectSlotCount(), 0u);
  EXPECT_EQ(loaded.LinkSlotCount(), 0u);
  EXPECT_EQ(SaveDatabaseString(loaded), once);
}

TEST(PersistenceAdversarial, TombstoneHeavyDatabaseRoundTrips) {
  // Mass-delete leaves mostly dead slots; live survivors must keep
  // their ids exactly.
  MetaDatabase db;
  std::vector<OidId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(db.CreateNextVersion("blk" + std::to_string(i % 8), "hdl",
                                       "fuzz", i));
  }
  for (int i = 0; i < 32; ++i) {
    ids.push_back(db.CreateNextVersion("blk" + std::to_string(i % 8), "sch",
                                       "fuzz", 100 + i));
  }
  std::vector<LinkId> links;
  for (size_t i = 0; i + 1 < ids.size(); i += 3) {
    links.push_back(db.CreateLink(LinkKind::kDerive, ids[i], ids[i + 1],
                                  {"outofdate"}, "derived",
                                  CarryPolicy::kNone));
  }
  // Delete most links first (DeleteObject requires detached endpoints),
  // then most objects.
  for (size_t i = 0; i < links.size(); ++i) {
    if (i % 4 != 0) db.DeleteLink(links[i]);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 5 != 0 && db.GetObject(ids[i]).alive &&
        db.InLinks(ids[i]).empty() && db.OutLinks(ids[i]).empty()) {
      db.DeleteObject(ids[i]);
    }
  }

  const std::string once = SaveDatabaseString(db);
  const MetaDatabase loaded = LoadDatabaseString(once);
  EXPECT_EQ(SaveDatabaseString(loaded), once);
  ExpectBitIdenticalIds(db, loaded);
}

TEST(PersistenceAdversarial, InterleavedDeleteRecreateRoundTrips) {
  // Delete/re-create churn (the state a snapshot taken mid-rebalance
  // sees): version chains with holes, slot ids far from dense.
  MetaDatabase db;
  for (int round = 0; round < 6; ++round) {
    std::vector<OidId> batch;
    for (int i = 0; i < 10; ++i) {
      batch.push_back(db.CreateNextVersion("churn" + std::to_string(i % 3),
                                           "view" + std::to_string(round % 2),
                                           "fuzz", round * 100 + i));
    }
    for (size_t i = 0; i < batch.size(); i += 2) {
      db.DeleteObject(batch[i]);
    }
  }
  const std::string once = SaveDatabaseString(db);
  const MetaDatabase loaded = LoadDatabaseString(once);
  EXPECT_EQ(SaveDatabaseString(loaded), once);
  ExpectBitIdenticalIds(db, loaded);
  // Version numbering continues after the holes, not inside them.
  const MetaDatabase* const_loaded = &loaded;
  int max_version = 0;
  const_loaded->ForEachObject([&](OidId, const MetaObject& object) {
    if (object.oid.block == "churn0") {
      max_version = std::max(max_version, object.oid.version);
    }
  });
  MetaDatabase mutable_loaded = LoadDatabaseString(once);
  const OidId next =
      mutable_loaded.CreateNextVersion("churn0", "view0", "next", 999);
  EXPECT_GT(mutable_loaded.GetObject(next).oid.version, max_version);
}

/// Property sweep: randomly built databases round-trip byte-identically.
class PersistenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistenceFuzz, RandomDatabaseRoundTrips) {
  damocles::Rng rng(GetParam());
  MetaDatabase db;
  std::vector<OidId> ids;

  const int blocks = static_cast<int>(rng.UniformInt(2, 6));
  const int views = static_cast<int>(rng.UniformInt(1, 4));
  for (int b = 0; b < blocks; ++b) {
    for (int v = 0; v < views; ++v) {
      const int versions = static_cast<int>(rng.UniformInt(1, 3));
      for (int k = 0; k < versions; ++k) {
        const OidId id = db.CreateNextVersion(
            "blk" + std::to_string(b), "view" + std::to_string(v), "fuzz",
            rng.UniformInt(0, 1000));
        ids.push_back(id);
        const int props = static_cast<int>(rng.UniformInt(0, 4));
        for (int p = 0; p < props; ++p) {
          db.SetProperty(id, "p" + std::to_string(p),
                         rng.Chance(0.5) ? "good" : "bad value with spaces");
        }
      }
    }
  }
  const int links = static_cast<int>(rng.UniformInt(0, 12));
  for (int l = 0; l < links; ++l) {
    const OidId from = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
    const OidId to = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
    if (from == to || !db.GetObject(from).alive || !db.GetObject(to).alive) {
      continue;
    }
    const CarryPolicy carry = static_cast<CarryPolicy>(rng.UniformInt(0, 2));
    try {
      db.CreateLink(rng.Chance(0.3) ? LinkKind::kUse : LinkKind::kDerive,
                    from, to, {"outofdate"}, "derive_from", carry);
    } catch (const IntegrityError&) {
      // Random endpoints may violate the use-link view invariant; fine.
    }
  }

  const std::string once = SaveDatabaseString(db);
  const std::string twice = SaveDatabaseString(LoadDatabaseString(once));
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

}  // namespace
}  // namespace damocles::metadb
