#include "metadb/persistence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "metadb/config_builder.hpp"

namespace damocles::metadb {
namespace {

MetaDatabase MakeSampleDatabase() {
  MetaDatabase db;
  const OidId hdl1 = db.CreateNextVersion("cpu", "HDL_model", "alice", 10);
  const OidId hdl2 = db.CreateNextVersion("cpu", "HDL_model", "alice", 20);
  const OidId sch = db.CreateNextVersion("cpu", "schematic", "bob", 30);
  db.SetProperty(hdl1, "sim_result", "4 errors");
  db.SetProperty(hdl2, "sim_result", "good");
  db.SetProperty(sch, "uptodate", "true");
  db.SetProperty(sch, "note", "has \"quotes\" and \\backslash");
  const LinkId link = db.CreateLink(LinkKind::kDerive, hdl2, sch,
                                    {"outofdate", "lvs"}, "derived",
                                    CarryPolicy::kMove);
  db.GetLinkMutable(link).properties["PROPAGATE"] = "outofdate,lvs";

  Configuration config = BuildFullCheckpoint(db, "snap", 40);
  db.SaveConfiguration(std::move(config));

  // A tombstone, to prove dead slots survive the round trip.
  const OidId doomed = db.CreateNextVersion("tmp", "scratch", "bob", 50);
  db.DeleteObject(doomed);
  return db;
}

TEST(Persistence, RoundTripPreservesEverything) {
  const MetaDatabase original = MakeSampleDatabase();
  const std::string text = SaveDatabaseString(original);
  const MetaDatabase loaded = LoadDatabaseString(text);

  EXPECT_EQ(loaded.ObjectSlotCount(), original.ObjectSlotCount());
  EXPECT_EQ(loaded.LinkSlotCount(), original.LinkSlotCount());
  EXPECT_EQ(loaded.ConfigurationSlotCount(),
            original.ConfigurationSlotCount());

  // Objects keep identity, properties, liveness.
  for (size_t i = 0; i < original.ObjectSlotCount(); ++i) {
    const MetaObject& a = original.GetObject(OidId(uint32_t(i)));
    const MetaObject& b = loaded.GetObject(OidId(uint32_t(i)));
    EXPECT_EQ(a.oid, b.oid);
    EXPECT_EQ(a.properties, b.properties);
    EXPECT_EQ(a.created_at, b.created_at);
    EXPECT_EQ(a.created_by, b.created_by);
    EXPECT_EQ(a.alive, b.alive);
  }
  // Links keep endpoints, kinds, carry, PROPAGATE.
  for (size_t i = 0; i < original.LinkSlotCount(); ++i) {
    const Link& a = original.GetLink(LinkId(uint32_t(i)));
    const Link& b = loaded.GetLink(LinkId(uint32_t(i)));
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.propagates, b.propagates);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.carry, b.carry);
    EXPECT_EQ(a.properties, b.properties);
    EXPECT_EQ(a.alive, b.alive);
  }
  // Configurations keep their handle sets.
  const Configuration& config =
      loaded.GetConfiguration(*loaded.FindConfiguration("snap"));
  EXPECT_EQ(config.oids.size(), 3u);
  EXPECT_EQ(config.links.size(), 1u);
}

TEST(Persistence, SaveIsDeterministic) {
  const MetaDatabase db = MakeSampleDatabase();
  EXPECT_EQ(SaveDatabaseString(db), SaveDatabaseString(db));
}

TEST(Persistence, DoubleRoundTripIsStable) {
  const MetaDatabase db = MakeSampleDatabase();
  const std::string once = SaveDatabaseString(db);
  const std::string twice = SaveDatabaseString(LoadDatabaseString(once));
  EXPECT_EQ(once, twice);
}

TEST(Persistence, LoadedDatabaseRemainsUsable) {
  MetaDatabase loaded =
      LoadDatabaseString(SaveDatabaseString(MakeSampleDatabase()));
  // Indexes were rebuilt: lookups and new versions work.
  EXPECT_TRUE(loaded.FindObject(Oid{"cpu", "HDL_model", 2}).has_value());
  const OidId v3 = loaded.CreateNextVersion("cpu", "HDL_model", "carol", 99);
  EXPECT_EQ(loaded.GetObject(v3).oid.version, 3);
  // Adjacency was rebuilt.
  const auto sch = loaded.FindObject(Oid{"cpu", "schematic", 1});
  ASSERT_TRUE(sch.has_value());
  EXPECT_EQ(loaded.InLinks(*sch).size(), 1u);
}

TEST(Persistence, RejectsMissingMagic) {
  EXPECT_THROW(LoadDatabaseString("not a database\n"), WireFormatError);
  EXPECT_THROW(LoadDatabaseString(""), WireFormatError);
}

TEST(Persistence, RejectsTruncatedInput) {
  const std::string text = SaveDatabaseString(MakeSampleDatabase());
  // Cut the file somewhere in the middle of the object section.
  const std::string truncated = text.substr(0, text.size() / 3);
  EXPECT_THROW(LoadDatabaseString(truncated), WireFormatError);
}

TEST(Persistence, RejectsGarbageLines) {
  std::string text = SaveDatabaseString(MakeSampleDatabase());
  text.insert(text.find("links "), "gibberish here\n");
  EXPECT_THROW(LoadDatabaseString(text), WireFormatError);
}

/// Property sweep: randomly built databases round-trip byte-identically.
class PersistenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistenceFuzz, RandomDatabaseRoundTrips) {
  damocles::Rng rng(GetParam());
  MetaDatabase db;
  std::vector<OidId> ids;

  const int blocks = static_cast<int>(rng.UniformInt(2, 6));
  const int views = static_cast<int>(rng.UniformInt(1, 4));
  for (int b = 0; b < blocks; ++b) {
    for (int v = 0; v < views; ++v) {
      const int versions = static_cast<int>(rng.UniformInt(1, 3));
      for (int k = 0; k < versions; ++k) {
        const OidId id = db.CreateNextVersion(
            "blk" + std::to_string(b), "view" + std::to_string(v), "fuzz",
            rng.UniformInt(0, 1000));
        ids.push_back(id);
        const int props = static_cast<int>(rng.UniformInt(0, 4));
        for (int p = 0; p < props; ++p) {
          db.SetProperty(id, "p" + std::to_string(p),
                         rng.Chance(0.5) ? "good" : "bad value with spaces");
        }
      }
    }
  }
  const int links = static_cast<int>(rng.UniformInt(0, 12));
  for (int l = 0; l < links; ++l) {
    const OidId from = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
    const OidId to = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
    if (from == to || !db.GetObject(from).alive || !db.GetObject(to).alive) {
      continue;
    }
    const CarryPolicy carry = static_cast<CarryPolicy>(rng.UniformInt(0, 2));
    try {
      db.CreateLink(rng.Chance(0.3) ? LinkKind::kUse : LinkKind::kDerive,
                    from, to, {"outofdate"}, "derive_from", carry);
    } catch (const IntegrityError&) {
      // Random endpoints may violate the use-link view invariant; fine.
    }
  }

  const std::string once = SaveDatabaseString(db);
  const std::string twice = SaveDatabaseString(LoadDatabaseString(once));
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

}  // namespace
}  // namespace damocles::metadb
