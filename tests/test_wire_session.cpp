#include "engine/wire_session.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/edtc.hpp"

namespace damocles::engine {
namespace {

using testutil::LatestProp;
using testutil::MakeEdtcServer;

class WireSessionTest : public ::testing::Test {
 protected:
  WireSessionTest() : server_(MakeEdtcServer()), session_(*server_, "alice") {}

  std::unique_ptr<ProjectServer> server_;
  WireSession session_;
};

TEST_F(WireSessionTest, HelpAndUnknownCommands) {
  EXPECT_NE(session_.HandleLine("help").find("postEvent"),
            std::string::npos);
  EXPECT_NE(session_.HandleLine("frobnicate").find("unknown command"),
            std::string::npos);
  EXPECT_EQ(session_.commands_handled(), 2u);
}

TEST_F(WireSessionTest, CheckinCreatesTrackedData) {
  const std::string response =
      session_.HandleLine("checkin CPU HDL_model \"module cpu;\"");
  EXPECT_EQ(response, "ok CPU,HDL_model,1\n");
  EXPECT_EQ(LatestProp(*server_, "CPU", "HDL_model", "uptodate"), "true");
  // The workspace attributes the data to the session user.
  const auto id = server_->database().FindLatest("CPU", "HDL_model");
  EXPECT_EQ(server_->database().GetObject(*id).created_by, "alice");
}

TEST_F(WireSessionTest, PostEventRoundTrip) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  EXPECT_EQ(
      session_.HandleLine("postEvent hdl_sim up CPU,HDL_model,1 \"good\""),
      "ok\n");
  EXPECT_EQ(LatestProp(*server_, "CPU", "HDL_model", "sim_result"), "good");
}

TEST_F(WireSessionTest, LinkAndQueryOutOfDate) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  session_.HandleLine("checkin CPU schematic \"s\"");
  EXPECT_EQ(session_.HandleLine(
                "link derive CPU,HDL_model,1 CPU,schematic,1"),
            "ok\n");

  // A new model version invalidates the schematic.
  session_.HandleLine("checkin CPU HDL_model \"m2\"");
  const std::string response = session_.HandleLine("query outofdate");
  EXPECT_NE(response.find("1 out of date"), std::string::npos);
  EXPECT_NE(response.find("<CPU.schematic.1>"), std::string::npos);
}

TEST_F(WireSessionTest, QueryStateListsProperties) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  const std::string response =
      session_.HandleLine("query state CPU,HDL_model,1");
  EXPECT_NE(response.find("sim_result = 'bad'"), std::string::npos);
  EXPECT_NE(response.find("uptodate = 'true'"), std::string::npos);
}

TEST_F(WireSessionTest, QueryBlock) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  session_.HandleLine("checkin CPU schematic \"s\"");
  const std::string response = session_.HandleLine("query block CPU");
  EXPECT_NE(response.find("2 object(s)"), std::string::npos);
}

TEST_F(WireSessionTest, BlockersCommand) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  const std::string response =
      session_.HandleLine("blockers sim_result=good");
  EXPECT_NE(response.find("sim_result = 'bad' (needs 'good')"),
            std::string::npos);
}

TEST_F(WireSessionTest, ReportAndCheckpoint) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  EXPECT_NE(session_.HandleLine("report").find("<CPU.HDL_model.1>"),
            std::string::npos);
  EXPECT_EQ(session_.HandleLine("checkpoint milestone1"),
            "ok checkpoint 'milestone1' with 1 addresses\n");
  EXPECT_TRUE(
      server_->database().FindConfiguration("milestone1").has_value());
}

TEST_F(WireSessionTest, SnapshotIsADeprecatedCheckpointAlias) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  EXPECT_EQ(session_.HandleLine("snapshot milestone1"),
            "notice: 'snapshot' is deprecated; use 'checkpoint <name>'\n"
            "ok checkpoint 'milestone1' with 1 addresses\n");
  EXPECT_TRUE(
      server_->database().FindConfiguration("milestone1").has_value());
}

TEST_F(WireSessionTest, HelpIsGeneratedFromTheRegistry) {
  const std::string help = session_.HandleLine("help");
  for (const WireCommandInfo& info : WireCommands()) {
    EXPECT_NE(help.find(std::string(info.usage)), std::string::npos)
        << "usage line missing from help: " << info.usage;
  }
  // The deprecated alias is listed with its replacement, not as a
  // first-class command.
  EXPECT_NE(help.find("deprecated:"), std::string::npos);
}

TEST_F(WireSessionTest, RegistryClassifiesReadsAndMutations) {
  EXPECT_EQ(ClassifyWireLine("query outofdate"), WireCommandKind::kRead);
  EXPECT_EQ(ClassifyWireLine("report"), WireCommandKind::kRead);
  EXPECT_EQ(ClassifyWireLine("viz dot"), WireCommandKind::kRead);
  EXPECT_EQ(ClassifyWireLine("checkin CPU HDL_model"),
            WireCommandKind::kMutate);
  EXPECT_EQ(ClassifyWireLine("postEvent ckin up a,b,1"),
            WireCommandKind::kMutate);
  EXPECT_EQ(ClassifyWireLine("checkpoint m1"), WireCommandKind::kMutate);
  EXPECT_EQ(ClassifyWireLine("snapshot m1"), WireCommandKind::kMutate);
  EXPECT_EQ(ClassifyWireLine("advance 60"), WireCommandKind::kMutate);
  // Unknown commands classify as reads: they error out immediately
  // instead of occupying the mutation queue.
  EXPECT_EQ(ClassifyWireLine("frobnicate"), WireCommandKind::kRead);
}

TEST_F(WireSessionTest, VizCommands) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  const std::string block = session_.HandleLine("viz block CPU");
  EXPECT_NE(block.find("block 'CPU'"), std::string::npos);
  EXPECT_NE(block.find("[HDL_model] v1"), std::string::npos);
  const std::string dot = session_.HandleLine("viz dot");
  EXPECT_NE(dot.find("digraph damocles"), std::string::npos);
  EXPECT_NE(session_.HandleLine("viz sideways").find("error:"),
            std::string::npos);
}

TEST_F(WireSessionTest, SnapshotReadsPinThePublishedEpoch) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  server_->database().PublishSnapshot();
  session_.set_snapshot_reads(true);

  EXPECT_EQ(session_.HandleLine("epoch"), "epoch 1\n");
  EXPECT_EQ(session_.last_read_epoch(), 1u);

  // A read answered from the pinned snapshot does not see unpublished
  // mutations...
  session_.HandleLine("checkin CPU schematic \"s\"");
  EXPECT_NE(session_.HandleLine("query block CPU").find("1 object(s)"),
            std::string::npos);

  // ...until the writer publishes the next epoch.
  server_->database().PublishSnapshot();
  EXPECT_NE(session_.HandleLine("query block CPU").find("2 object(s)"),
            std::string::npos);
  EXPECT_EQ(session_.last_read_epoch(), 2u);
}

TEST_F(WireSessionTest, ValidateRunsTheLinter) {
  const std::string response = session_.HandleLine("validate");
  // The EDTC blueprint only carries the known unread-event warnings.
  EXPECT_EQ(response.find("error"), std::string::npos);
}

TEST_F(WireSessionTest, AdvanceMovesTheClock) {
  EXPECT_EQ(session_.HandleLine("advance 3600"), "ok day 0 01:00:00\n");
  EXPECT_NE(session_.HandleLine("advance lots").find("error"),
            std::string::npos);
}

TEST_F(WireSessionTest, ErrorsAreReportedInBand) {
  // Checkout of unknown data, malformed postEvent, bad link kind: the
  // session answers with "error:" lines instead of throwing.
  EXPECT_NE(session_.HandleLine("checkout ghost hdl").find("error:"),
            std::string::npos);
  EXPECT_NE(session_.HandleLine("postEvent bad").find("error:"),
            std::string::npos);
  EXPECT_NE(
      session_.HandleLine("link sideways a,b,1 c,d,1").find("error:"),
      std::string::npos);
  EXPECT_NE(session_.HandleLine("query state no,such,1").find("error:"),
            std::string::npos);
}

TEST_F(WireSessionTest, CheckoutEnforcesExclusivity) {
  session_.HandleLine("checkin CPU HDL_model \"m\"");
  EXPECT_EQ(session_.HandleLine("checkout CPU HDL_model"),
            "ok CPU,HDL_model,1\n");

  WireSession bob(*server_, "bob");
  EXPECT_NE(bob.HandleLine("checkout CPU HDL_model").find("error:"),
            std::string::npos);
}

}  // namespace
}  // namespace damocles::engine
