#include "blueprint/lexer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace damocles::blueprint {
namespace {

std::vector<Token> Lex(std::string_view source) { return Tokenize(source); }

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenKind::kEnd));
}

TEST(Lexer, KeywordsAreRecognized) {
  const auto tokens = Lex("blueprint view when do done endview");
  ASSERT_EQ(tokens.size(), 7u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(tokens[i].Is(TokenKind::kKeyword)) << i;
  }
}

TEST(Lexer, IdentifiersKeepDotsAndDashes) {
  const auto tokens = Lex("netlister.sh HDL_model foo-bar");
  EXPECT_EQ(tokens[0].text, "netlister.sh");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kIdentifier));
  EXPECT_EQ(tokens[1].text, "HDL_model");
  EXPECT_EQ(tokens[2].text, "foo-bar");
}

TEST(Lexer, ExpressionOperatorsAreKeywords) {
  const auto tokens = Lex("a and b or not c");
  EXPECT_TRUE(tokens[1].IsKeyword("and"));
  EXPECT_TRUE(tokens[3].IsKeyword("or"));
  EXPECT_TRUE(tokens[4].IsKeyword("not"));
}

TEST(Lexer, VariablesDropTheDollar) {
  const auto tokens = Lex("$arg $oid");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kVariable));
  EXPECT_EQ(tokens[0].text, "arg");
  EXPECT_EQ(tokens[1].text, "oid");
}

TEST(Lexer, DollarWithoutNameFails) {
  EXPECT_THROW(Lex("$ foo"), ParseError);
}

TEST(Lexer, StringsKeepDollarRaw) {
  const auto tokens = Lex("\"$oid changed by $user\"");
  ASSERT_TRUE(tokens[0].Is(TokenKind::kString));
  EXPECT_EQ(tokens[0].text, "$oid changed by $user");
}

TEST(Lexer, StringEscapes) {
  const auto tokens = Lex(R"("say \"hi\" and \\ back")");
  EXPECT_EQ(tokens[0].text, "say \"hi\" and \\ back");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_THROW(Lex("\"never ends"), ParseError);
}

TEST(Lexer, CommentsRunToEndOfLine) {
  const auto tokens = Lex("# a comment\nview # trailing\nname");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].IsKeyword("view"));
  EXPECT_EQ(tokens[1].text, "name");
}

TEST(Lexer, OperatorsAndPunctuation) {
  const auto tokens = Lex("= == != ( ) ; ,");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kEquals));
  EXPECT_TRUE(tokens[1].Is(TokenKind::kEqEq));
  EXPECT_TRUE(tokens[2].Is(TokenKind::kNotEq));
  EXPECT_TRUE(tokens[3].Is(TokenKind::kLParen));
  EXPECT_TRUE(tokens[4].Is(TokenKind::kRParen));
  EXPECT_TRUE(tokens[5].Is(TokenKind::kSemicolon));
  EXPECT_TRUE(tokens[6].Is(TokenKind::kComma));
}

TEST(Lexer, EqualsFollowedByValue) {
  const auto tokens = Lex("uptodate = true");
  EXPECT_TRUE(tokens[1].Is(TokenKind::kEquals));
  EXPECT_EQ(tokens[2].text, "true");
}

TEST(Lexer, BangAloneFails) {
  EXPECT_THROW(Lex("a ! b"), ParseError);
}

TEST(Lexer, IllegalCharacterFails) {
  EXPECT_THROW(Lex("a @ b"), ParseError);
  EXPECT_THROW(Lex("{}"), ParseError);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = Lex("view\n  name");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, ErrorCarriesPosition) {
  try {
    Lex("view\n  @");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 2);
    EXPECT_EQ(error.column(), 3);
  }
}

TEST(Lexer, NumbersLexAsIdentifiers) {
  const auto tokens = Lex("version 42");
  EXPECT_TRUE(tokens[1].Is(TokenKind::kIdentifier));
  EXPECT_EQ(tokens[1].text, "42");
}

TEST(Lexer, KeywordPredicate) {
  EXPECT_TRUE(IsBlueprintKeyword("when"));
  EXPECT_TRUE(IsBlueprintKeyword("propagates"));
  EXPECT_TRUE(IsBlueprintKeyword("and"));
  EXPECT_FALSE(IsBlueprintKeyword("ckin"));
  EXPECT_FALSE(IsBlueprintKeyword("schematic"));
}

}  // namespace
}  // namespace damocles::blueprint
