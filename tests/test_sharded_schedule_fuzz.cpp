// Randomized differential fuzz for the sharded wave engine's
// scheduling freedoms: batched (epoch, target shard) handoff, seed
// chunking, lane stealing and the shared claim stores must all be
// invisible in the delivered record multiset and the final property
// state, under ANY schedule.
//
// Each seeded iteration builds a random topology (random use-link
// subtree structure, random cross-subtree derive links with random
// PROPAGATE lists — diamonds and cycles arise naturally) plus a random
// event schedule, then replays the identical workload through:
//   * a 1-shard deterministic engine       (the reference),
//   * an N-shard deterministic engine      (batched handoff),
//   * an N-shard deterministic engine      (unbatched PR-4 handoff),
//   * an N-shard THREADED engine           (batching + lane stealing,
//                                           small rings + seed chunks
//                                           so spill paths run too),
// and asserts journal record-multiset equality, property-state
// equality and exactly-once delivery counts across all four. The rule
// set writes only constant values, so the final property state is
// schedule-invariant by construction and any divergence is an engine
// bug, not workload noise.
//
// The threaded variant runs under TSan in CI (the suite name matches
// the TSan job's "Sharded" filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "engine/sharded_engine.hpp"
#include "metadb/meta_database.hpp"

namespace damocles {
namespace {

using engine::EngineStats;
using engine::ShardedEngine;
using engine::ShardedEngineOptions;
using events::Direction;
using events::EventMessage;
using metadb::CarryPolicy;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::Oid;
using metadb::OidId;

// Constant-valued rules only: any delivery order yields the same final
// property state. 'relay' exercises direction posts (fresh wave scopes
// mid-wave), 'poster' exercises queue-reposted 'post ... to' events.
constexpr const char* kFuzzBlueprint = R"(blueprint schedule_fuzz
view default
  when edit do edited = yes done
  when ckin do checked = yes done
endview
view relay
  when edit do post note down done
  when note do noted = yes done
  when ckin do checked = yes done
endview
view poster
  when ckin do post pulse down to sink done
  when edit do edited = yes done
endview
view sink
  when pulse do pulsed = yes done
  when note do noted = yes done
  when edit do edited = yes done
endview
endblueprint)";

/// One seeded random workload, replayable against any engine
/// configuration. Topology and schedule are derived from the seed
/// alone, so every engine sees byte-identical structure and intake.
struct FuzzPlan {
  struct LinkSpec {
    int from = 0;
    int to = 0;
    LinkKind kind = LinkKind::kDerive;
    std::vector<std::string> propagates;
  };
  struct EventSpec {
    std::string name;
    Direction direction = Direction::kDown;
    int target_block = 0;
    bool drain_after = false;
  };

  std::vector<std::string> views;   ///< Per block.
  std::vector<LinkSpec> links;
  std::vector<EventSpec> events;
};

FuzzPlan MakePlan(uint64_t seed) {
  Rng rng(seed);
  FuzzPlan plan;
  const int blocks = static_cast<int>(rng.UniformInt(8, 13));
  const char* kViews[] = {"sch", "sch", "relay", "poster", "sink"};
  for (int b = 0; b < blocks; ++b) {
    plan.views.push_back(kViews[rng.UniformInt(0, 4)]);
  }

  // Use links group blocks into subtrees (the shard unit); derive links
  // cross them freely and carry random PROPAGATE subsets, so waves
  // reconverge, cycle and cross shard boundaries.
  const int use_links = static_cast<int>(rng.UniformInt(2, blocks - 2));
  const int derive_links = static_cast<int>(rng.UniformInt(blocks, blocks * 2));
  const char* kEvents[] = {"edit", "ckin", "note"};
  for (int i = 0; i < use_links + derive_links; ++i) {
    FuzzPlan::LinkSpec link;
    link.from = static_cast<int>(rng.UniformInt(0, blocks - 1));
    link.to = static_cast<int>(rng.UniformInt(0, blocks - 1));
    if (link.from == link.to) continue;
    link.kind = i < use_links ? LinkKind::kUse : LinkKind::kDerive;
    if (link.kind == LinkKind::kUse &&
        plan.views[static_cast<size_t>(link.from)] !=
            plan.views[static_cast<size_t>(link.to)]) {
      continue;  // Use links require endpoints of one view type.
    }
    for (const char* event : kEvents) {
      if (rng.Chance(link.kind == LinkKind::kUse ? 0.5 : 0.6)) {
        link.propagates.push_back(event);
      }
    }
    plan.links.push_back(std::move(link));
  }

  const int events = static_cast<int>(rng.UniformInt(24, 48));
  for (int i = 0; i < events; ++i) {
    FuzzPlan::EventSpec event;
    const double draw = rng.UniformDouble();
    event.name = draw < 0.5 ? "edit" : (draw < 0.85 ? "ckin" : "note");
    event.direction = rng.Chance(0.7) ? Direction::kDown : Direction::kUp;
    event.target_block = static_cast<int>(rng.UniformInt(0, blocks - 1));
    event.drain_after = rng.Chance(0.15);
    plan.events.push_back(std::move(event));
  }
  return plan;
}

std::string BlockName(int index) { return "fz" + std::to_string(index); }

struct RunResult {
  std::vector<std::string> journal;         ///< Sorted record lines.
  std::map<std::string, std::string> properties;
  size_t propagated_deliveries = 0;
  size_t wave_deliveries = 0;
};

RunResult RunPlan(const FuzzPlan& plan, const ShardedEngineOptions& options) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngine engine(db, clock, options);
  engine.LoadBlueprintText(kFuzzBlueprint);

  std::vector<OidId> oids;
  for (size_t b = 0; b < plan.views.size(); ++b) {
    oids.push_back(engine.OnCreateObject(BlockName(static_cast<int>(b)),
                                         plan.views[b], "fuzz"));
  }
  for (const FuzzPlan::LinkSpec& link : plan.links) {
    db.CreateLink(link.kind, oids[static_cast<size_t>(link.from)],
                  oids[static_cast<size_t>(link.to)], link.propagates, "",
                  CarryPolicy::kNone);
  }
  engine.shard_map().Rebalance();

  for (const FuzzPlan::EventSpec& spec : plan.events) {
    EventMessage event;
    event.name = spec.name;
    event.direction = spec.direction;
    event.target =
        Oid{BlockName(spec.target_block),
            plan.views[static_cast<size_t>(spec.target_block)], 1};
    event.user = "fuzz";
    event.timestamp = 1;  // Fixed stamp: runs compare byte-for-byte.
    engine.PostEvent(std::move(event));
    if (spec.drain_after) engine.Drain();
  }
  engine.Drain();

  RunResult result;
  result.journal = engine.JournalLines();
  std::sort(result.journal.begin(), result.journal.end());
  db.ForEachObject([&](OidId, const metadb::MetaObject& object) {
    for (const auto& [name, value] : object.properties) {
      result.properties[metadb::FormatOid(object.oid) + "/" + name] = value;
    }
  });
  const EngineStats stats = engine.AggregateEngineStats();
  result.propagated_deliveries = stats.propagated_deliveries;
  result.wave_deliveries = stats.wave_deliveries;
  return result;
}

void RunSeedRange(uint64_t first_seed, uint64_t last_seed) {
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    const FuzzPlan plan = MakePlan(seed);
    Rng config_rng(seed ^ 0x5eed5eed);
    const uint32_t shards =
        static_cast<uint32_t>(config_rng.UniformInt(2, 5));

    ShardedEngineOptions reference;
    reference.num_shards = 1;
    reference.deterministic = true;
    const RunResult expected = RunPlan(plan, reference);

    ShardedEngineOptions det_batched;
    det_batched.num_shards = shards;
    det_batched.deterministic = true;
    det_batched.max_batch_seeds =
        config_rng.Chance(0.5) ? 3 : det_batched.max_batch_seeds;

    ShardedEngineOptions det_unbatched = det_batched;
    det_unbatched.batched_handoff = false;

    ShardedEngineOptions threaded;
    threaded.num_shards = shards;
    threaded.max_batch_seeds = det_batched.max_batch_seeds;
    threaded.queue_capacity = config_rng.Chance(0.5) ? 4 : 256;

    const struct {
      const char* name;
      const ShardedEngineOptions& options;
    } variants[] = {
        {"deterministic batched", det_batched},
        {"deterministic unbatched", det_unbatched},
        {"threaded stealing", threaded},
    };
    for (const auto& variant : variants) {
      const RunResult actual = RunPlan(plan, variant.options);
      ASSERT_EQ(expected.journal, actual.journal)
          << variant.name << " seed " << seed << " shards " << shards;
      ASSERT_EQ(expected.properties, actual.properties)
          << variant.name << " seed " << seed << " shards " << shards;
      ASSERT_EQ(expected.propagated_deliveries, actual.propagated_deliveries)
          << variant.name << " seed " << seed << " shards " << shards;
      ASSERT_EQ(expected.wave_deliveries, actual.wave_deliveries)
          << variant.name << " seed " << seed << " shards " << shards;
    }
  }
}

// 4 × 55 = 220 seeded iterations, split so ctest parallelism and the
// TSan job spread them across cores.
TEST(ShardedScheduleFuzz, RandomTopologyDifferentialSeeds0To54) {
  RunSeedRange(0, 54);
}

TEST(ShardedScheduleFuzz, RandomTopologyDifferentialSeeds55To109) {
  RunSeedRange(55, 109);
}

TEST(ShardedScheduleFuzz, RandomTopologyDifferentialSeeds110To164) {
  RunSeedRange(110, 164);
}

TEST(ShardedScheduleFuzz, RandomTopologyDifferentialSeeds165To219) {
  RunSeedRange(165, 219);
}

}  // namespace
}  // namespace damocles
