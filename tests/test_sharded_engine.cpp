// Tests for the sharded wave engine and the block-subtree shard map.
//
// The load-bearing guarantees, pinned differentially:
//  * num_shards = 1 is journal-byte-identical to the plain PR-2 engine;
//  * for N shards the multiset of journal records matches the 1-shard
//    run exactly — including reconvergent topologies (one wave reaching
//    an OID through two shards) where the per-wave (epoch, OID) claims
//    deliver exactly once; only the interleaving across shards differs;
//  * threaded and deterministic execution produce the same multiset;
//  * cross-shard waves (a derive link between blocks of different
//    subtrees) are handed off and delivered on the foreign shard;
//    cross-shard cycles terminate through the claims, the hop cap only
//    backstops chains of distinct OIDs;
//  * N shard indexes together hold ~1× the link graph (per-shard scoped
//    PropagationIndex), each consistent with a scoped rescan, and
//    Rebalance migrates buckets between indexes instead of rebuilding;
//  * the ShardMap tracks subtree roots incrementally through link adds
//    and, after random endpoint moves / deletions plus a rebalance,
//    agrees with an oracle that recomputes the components from scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "blueprint/parser.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "engine/run_time_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "metadb/meta_database.hpp"
#include "metadb/shard_map.hpp"
#include "workload/generators.hpp"

namespace damocles {
namespace {

using engine::EngineStats;
using engine::RunTimeEngine;
using engine::ShardedEngine;
using engine::ShardedEngineOptions;
using engine::ShardedStats;
using events::Direction;
using events::EventMessage;
using metadb::CarryPolicy;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::Oid;
using metadb::OidId;
using metadb::ShardMap;

EventMessage Event(std::string name, const Oid& target, Direction direction,
                   std::string arg = "") {
  EventMessage event;
  event.name = std::move(name);
  event.direction = direction;
  event.target = target;
  event.arg = std::move(arg);
  event.user = "test";
  event.timestamp = 1;  // Fixed stamp: runs compare byte-for-byte.
  return event;
}

// --- A workload both engine flavours can replay identically ----------------
//
// `blocks` independent flow instances (view_0 -> ... -> view_{n-1}
// derive chains, per workload::MakeFlowBlueprint) plus a small use-link
// hierarchy under each block, then a seeded random event trace with
// periodic drains. The adapter hides plain-vs-sharded.

struct PlainAdapter {
  RunTimeEngine& engine;
  void LoadBlueprintText(const std::string& text) {
    engine.LoadBlueprint(blueprint::ParseBlueprint(text));
  }
  OidId CreateObject(const std::string& block, const std::string& view) {
    return engine.OnCreateObject(block, view, "test");
  }
  void CreateLink(LinkKind kind, OidId from, OidId to) {
    engine.OnCreateLink(kind, from, to);
  }
  void Post(EventMessage event) { engine.PostEvent(std::move(event)); }
  void Drain() { engine.ProcessAll(); }
  void Settle() {}
};

struct ShardedAdapter {
  ShardedEngine& engine;
  void LoadBlueprintText(const std::string& text) {
    engine.LoadBlueprintText(text);
  }
  OidId CreateObject(const std::string& block, const std::string& view) {
    return engine.OnCreateObject(block, view, "test");
  }
  void CreateLink(LinkKind kind, OidId from, OidId to) {
    engine.OnCreateLink(kind, from, to);
  }
  void Post(EventMessage event) { engine.PostEvent(std::move(event)); }
  void Drain() { engine.Drain(); }
  /// Bulk construction done: deal subtree roots round-robin.
  void Settle() { engine.shard_map().Rebalance(); }
};

struct WorkloadSpec {
  int blocks = 6;
  int views = 3;
  int hierarchy_children = 2;  ///< Use-linked sub-blocks per flow block.
  int events = 80;
  uint64_t seed = 42;
};

template <typename Adapter>
void RunWorkload(Adapter api, MetaDatabase& db, const WorkloadSpec& spec) {
  workload::FlowSpec flow;
  flow.n_views = spec.views;
  api.LoadBlueprintText(workload::MakeFlowBlueprint(flow, "sharded"));

  const std::vector<std::string> views = workload::FlowViewNames(flow);
  std::vector<std::string> blocks;
  for (int b = 0; b < spec.blocks; ++b) {
    const std::string block = "blk" + std::to_string(b);
    blocks.push_back(block);
    OidId previous;
    for (int v = 0; v < spec.views; ++v) {
      const OidId id = api.CreateObject(block, views[static_cast<size_t>(v)]);
      if (v > 0) api.CreateLink(LinkKind::kDerive, previous, id);
      previous = id;
    }
    // A small use-link hierarchy under view_0 keeps the subtree grouping
    // honest (children are distinct blocks merged by use links).
    const OidId root = *db.FindObject(Oid{block, views[0], 1});
    for (int c = 0; c < spec.hierarchy_children; ++c) {
      const OidId child =
          api.CreateObject(block + "_sub" + std::to_string(c), views[0]);
      api.CreateLink(LinkKind::kUse, root, child);
    }
  }

  api.Settle();

  Rng rng(spec.seed);
  for (int i = 0; i < spec.events; ++i) {
    const std::string& block =
        blocks[static_cast<size_t>(rng.UniformInt(0, spec.blocks - 1))];
    const int view = static_cast<int>(rng.UniformInt(0, spec.views - 1));
    const Oid target{block, views[static_cast<size_t>(view)], 1};
    const double draw = rng.UniformDouble();
    if (draw < 0.5) {
      api.Post(Event("ckin", target, Direction::kUp, "rev"));
    } else if (draw < 0.8) {
      api.Post(Event("outofdate", target, Direction::kDown));
    } else {
      api.Post(Event("res0", target, Direction::kDown,
                     rng.Chance(0.5) ? "good" : "bad"));
    }
    if (rng.Chance(0.2)) api.Drain();
  }
  api.Drain();
}

std::vector<std::string> SortedLines(std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::map<std::string, std::string> PropertySnapshot(const MetaDatabase& db) {
  std::map<std::string, std::string> snapshot;
  db.ForEachObject([&](OidId, const metadb::MetaObject& object) {
    for (const auto& [name, value] : object.properties) {
      snapshot[metadb::FormatOid(object.oid) + "/" + name] = value;
    }
  });
  return snapshot;
}

// --- Differential: 1 shard == plain engine, byte for byte -------------------

TEST(ShardedEngine, OneShardIsByteIdenticalToPlainEngine) {
  for (const uint64_t seed : {7u, 99u}) {
    WorkloadSpec spec;
    spec.seed = seed;

    MetaDatabase plain_db;
    SimClock plain_clock;
    RunTimeEngine plain(plain_db, plain_clock);
    RunWorkload(PlainAdapter{plain}, plain_db, spec);

    MetaDatabase sharded_db;
    SimClock sharded_clock;
    ShardedEngineOptions options;
    options.num_shards = 1;
    options.deterministic = true;
    ShardedEngine sharded(sharded_db, sharded_clock, options);
    RunWorkload(ShardedAdapter{sharded}, sharded_db, spec);

    EXPECT_EQ(plain.journal().Dump(), sharded.shard(0).journal().Dump())
        << "seed " << seed;
    EXPECT_EQ(PropertySnapshot(plain_db), PropertySnapshot(sharded_db))
        << "seed " << seed;

    const EngineStats& a = plain.stats();
    const EngineStats b = sharded.AggregateEngineStats();
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.wave_deliveries, b.wave_deliveries);
    EXPECT_EQ(a.propagated_deliveries, b.propagated_deliveries);
    EXPECT_EQ(a.assign_actions, b.assign_actions);
    EXPECT_EQ(a.property_writes, b.property_writes);
    EXPECT_EQ(b.handoff_receivers, 0u);
    EXPECT_EQ(b.seeded_handoff_waves, 0u);
  }
}

// A threaded single worker must match too (same lane FIFO, real thread).
TEST(ShardedEngine, OneShardThreadedMatchesPlainEngine) {
  WorkloadSpec spec;
  spec.events = 40;

  MetaDatabase plain_db;
  SimClock plain_clock;
  RunTimeEngine plain(plain_db, plain_clock);
  RunWorkload(PlainAdapter{plain}, plain_db, spec);

  MetaDatabase sharded_db;
  SimClock sharded_clock;
  ShardedEngineOptions options;
  options.num_shards = 1;
  ShardedEngine sharded(sharded_db, sharded_clock, options);
  RunWorkload(ShardedAdapter{sharded}, sharded_db, spec);

  EXPECT_EQ(plain.journal().Dump(), sharded.shard(0).journal().Dump());
  EXPECT_EQ(PropertySnapshot(plain_db), PropertySnapshot(sharded_db));
}

// --- Differential: N shards == 1 shard, as a record multiset ---------------

TEST(ShardedEngine, MultiShardJournalMatchesOneShardAsMultiset) {
  for (const uint32_t shards : {2u, 4u}) {
    WorkloadSpec spec;
    spec.blocks = 8;
    spec.events = 120;

    MetaDatabase one_db;
    SimClock one_clock;
    ShardedEngineOptions one_options;
    one_options.num_shards = 1;
    one_options.deterministic = true;
    ShardedEngine one(one_db, one_clock, one_options);
    RunWorkload(ShardedAdapter{one}, one_db, spec);

    MetaDatabase many_db;
    SimClock many_clock;
    ShardedEngineOptions many_options;
    many_options.num_shards = shards;
    many_options.deterministic = true;
    ShardedEngine many(many_db, many_clock, many_options);
    RunWorkload(ShardedAdapter{many}, many_db, spec);

    EXPECT_EQ(SortedLines(one.JournalLines()),
              SortedLines(many.JournalLines()))
        << shards << " shards";
    EXPECT_EQ(PropertySnapshot(one_db), PropertySnapshot(many_db))
        << shards << " shards";

    const EngineStats a = one.AggregateEngineStats();
    const EngineStats b = many.AggregateEngineStats();
    EXPECT_EQ(a.wave_deliveries, b.wave_deliveries) << shards << " shards";
    EXPECT_EQ(a.propagated_deliveries, b.propagated_deliveries);
    EXPECT_EQ(a.assign_actions, b.assign_actions);
    EXPECT_EQ(a.property_writes, b.property_writes);

    // The partitioned workload never crosses subtrees, so every event
    // stayed on its own shard.
    EXPECT_EQ(b.handoff_receivers, 0u) << shards << " shards";

    // Work actually spread: with 8 independent subtrees and round-robin
    // root assignment every shard processed something.
    size_t active_shards = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      if (many.shard(s).stats().events_processed > 0) ++active_shards;
    }
    EXPECT_EQ(active_shards, shards);
  }
}

TEST(ShardedEngine, ThreadedExecutionMatchesDeterministicMultiset) {
  WorkloadSpec spec;
  spec.blocks = 8;
  spec.events = 120;

  MetaDatabase det_db;
  SimClock det_clock;
  ShardedEngineOptions det_options;
  det_options.num_shards = 4;
  det_options.deterministic = true;
  ShardedEngine det(det_db, det_clock, det_options);
  RunWorkload(ShardedAdapter{det}, det_db, spec);

  MetaDatabase thr_db;
  SimClock thr_clock;
  ShardedEngineOptions thr_options;
  thr_options.num_shards = 4;
  thr_options.queue_capacity = 8;  // Tiny ring: exercise the spill path.
  ShardedEngine thr(thr_db, thr_clock, thr_options);
  RunWorkload(ShardedAdapter{thr}, thr_db, spec);

  EXPECT_EQ(SortedLines(det.JournalLines()), SortedLines(thr.JournalLines()));
  EXPECT_EQ(PropertySnapshot(det_db), PropertySnapshot(thr_db));
  EXPECT_EQ(det.AggregateEngineStats().wave_deliveries,
            thr.AggregateEngineStats().wave_deliveries);
}

// --- Cross-shard handoff -----------------------------------------------------

/// Two flow subtrees in different shards, bridged by one derive link
/// whose PROPAGATE carries the event: the wave must cross the shard
/// boundary as a seeded sub-wave and keep expanding on the far side.
TEST(ShardedEngine, CrossShardWaveIsHandedOffAndKeepsExpanding) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.deterministic = true;
  ShardedEngine sharded(db, clock, options);

  const OidId a0 = sharded.OnCreateObject("blk_a", "sch", "test");
  const OidId b0 = sharded.OnCreateObject("blk_b", "sch", "test");
  const OidId b1 = sharded.OnCreateObject("blk_b", "net", "test");
  // Deal roots round-robin: blk_a -> shard 0, blk_b -> shard 1.
  sharded.shard_map().Rebalance();
  ASSERT_NE(sharded.shard_map().ShardOf(a0), sharded.shard_map().ShardOf(b0));

  // Bridge and continuation, both propagating "edit".
  db.CreateLink(LinkKind::kDerive, a0, b0, {"edit"}, "depend_on",
                CarryPolicy::kNone);
  db.CreateLink(LinkKind::kDerive, b0, b1, {"edit"}, "derive_from",
                CarryPolicy::kNone);

  sharded.PostEvent(Event("edit", Oid{"blk_a", "sch", 1}, Direction::kDown));
  sharded.Drain();

  // Shard 0 processed the queue event and handed one receiver off.
  EXPECT_EQ(sharded.shard(0).stats().events_processed, 1u);
  EXPECT_EQ(sharded.shard(0).stats().handoff_receivers, 1u);
  // Shard 1 delivered the seeded sub-wave to b0, then expanded to b1.
  EXPECT_EQ(sharded.shard(1).stats().seeded_handoff_waves, 1u);
  EXPECT_EQ(sharded.shard(1).stats().propagated_deliveries, 2u);
  EXPECT_EQ(sharded.stats().handoff_waves, 1u);

  // Same wave through one shard: the record multiset must match.
  MetaDatabase one_db;
  SimClock one_clock;
  ShardedEngineOptions one_options;
  one_options.num_shards = 1;
  one_options.deterministic = true;
  ShardedEngine one(one_db, one_clock, one_options);
  const OidId one_a0 = one.OnCreateObject("blk_a", "sch", "test");
  const OidId one_b0 = one.OnCreateObject("blk_b", "sch", "test");
  const OidId one_b1 = one.OnCreateObject("blk_b", "net", "test");
  one_db.CreateLink(LinkKind::kDerive, one_a0, one_b0, {"edit"}, "depend_on",
                    CarryPolicy::kNone);
  one_db.CreateLink(LinkKind::kDerive, one_b0, one_b1, {"edit"},
                    "derive_from", CarryPolicy::kNone);
  one.PostEvent(Event("edit", Oid{"blk_a", "sch", 1}, Direction::kDown));
  one.Drain();

  EXPECT_EQ(SortedLines(one.JournalLines()),
            SortedLines(sharded.JournalLines()));
}

/// A propagation cycle whose links cross shards (A -> B and B -> A
/// both propagate the event) terminates through the per-wave
/// (epoch, OID) claims — the returning sub-wave's seed was already
/// delivered, so it dies without the hop cap ever firing — and the
/// record multiset equals the single visited set of a 1-shard wave.
TEST(ShardedEngine, CrossShardPropagationCycleTerminatesExactlyOnce) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.deterministic = true;
  options.max_handoff_hops = 8;
  ShardedEngine sharded(db, clock, options);

  const OidId a = sharded.OnCreateObject("blk_a", "sch", "test");
  const OidId b = sharded.OnCreateObject("blk_b", "sch", "test");
  sharded.shard_map().Rebalance();
  ASSERT_NE(sharded.shard_map().ShardOf(a), sharded.shard_map().ShardOf(b));
  db.CreateLink(LinkKind::kDerive, a, b, {"edit"}, "", CarryPolicy::kNone);
  db.CreateLink(LinkKind::kDerive, b, a, {"edit"}, "", CarryPolicy::kNone);

  sharded.PostEvent(Event("edit", Oid{"blk_a", "sch", 1}, Direction::kDown));
  sharded.Drain();  // Must return.

  // A -> B crossed, B -> A crossed back and was suppressed at the seed.
  EXPECT_EQ(sharded.stats().handoff_waves_truncated, 0u);
  EXPECT_EQ(sharded.stats().handoff_waves, 2u);
  const EngineStats total = sharded.AggregateEngineStats();
  EXPECT_EQ(total.propagated_deliveries, 1u);  // B, exactly once.
  EXPECT_EQ(total.dedup_suppressed, 1u);       // The returning A seed.

  // The 1-shard engine's single visited set is the reference.
  MetaDatabase one_db;
  SimClock one_clock;
  ShardedEngineOptions one_options;
  one_options.num_shards = 1;
  one_options.deterministic = true;
  ShardedEngine one(one_db, one_clock, one_options);
  const OidId one_a = one.OnCreateObject("blk_a", "sch", "test");
  const OidId one_b = one.OnCreateObject("blk_b", "sch", "test");
  one_db.CreateLink(LinkKind::kDerive, one_a, one_b, {"edit"}, "",
                    CarryPolicy::kNone);
  one_db.CreateLink(LinkKind::kDerive, one_b, one_a, {"edit"}, "",
                    CarryPolicy::kNone);
  one.PostEvent(Event("edit", Oid{"blk_a", "sch", 1}, Direction::kDown));
  one.Drain();

  EXPECT_EQ(SortedLines(one.JournalLines()),
            SortedLines(sharded.JournalLines()));
}

/// 'post <event> down to <view>' across a shard boundary: the posted
/// event re-enters sharded intake and is processed on the target's
/// shard, exactly like an external event.
TEST(ShardedEngine, RulePostedEventsRerouteToTargetShard) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.deterministic = true;
  ShardedEngine sharded(db, clock, options);

  sharded.LoadBlueprintText(R"(blueprint relay
view default
endview
view src
  when ping do post pong down to sink done
endview
view sink
  when pong do hit = yes done
endview
endblueprint)");

  const OidId src = sharded.OnCreateObject("blk_a", "src", "test");
  const OidId sink = sharded.OnCreateObject("blk_b", "sink", "test");
  sharded.shard_map().Rebalance();
  ASSERT_NE(sharded.shard_map().ShardOf(src),
            sharded.shard_map().ShardOf(sink));
  // The BFS behind 'post ... to' walks links regardless of PROPAGATE.
  db.CreateLink(LinkKind::kDerive, src, sink, {}, "depend_on",
                CarryPolicy::kNone);

  sharded.PostEvent(Event("ping", Oid{"blk_a", "src", 1}, Direction::kDown));
  sharded.Drain();

  EXPECT_EQ(*db.GetProperty(sink, "hit"), "yes");
  EXPECT_EQ(sharded.stats().reposted_events, 1u);
  const uint32_t sink_shard = sharded.shard_map().ShardOf(sink);
  EXPECT_EQ(sharded.shard(sink_shard).stats().events_processed, 1u);
}

// --- Cross-shard reconvergence: exactly-once waves ---------------------------

/// Builds the diamond A -> {B, C} -> D over four single-view blocks
/// (each its own subtree, so 3+ shards split it), every link
/// propagating "edit". Returns the created OIDs in {a, b, c, d} order.
std::vector<OidId> BuildDiamond(ShardedEngine& engine,
                                MetaDatabase& db) {
  std::vector<OidId> oids;
  for (const char* block : {"dia_a", "dia_b", "dia_c", "dia_d"}) {
    oids.push_back(engine.OnCreateObject(block, "sch", "test"));
  }
  engine.shard_map().Rebalance();
  db.CreateLink(LinkKind::kDerive, oids[0], oids[1], {"edit"}, "",
                CarryPolicy::kNone);
  db.CreateLink(LinkKind::kDerive, oids[0], oids[2], {"edit"}, "",
                CarryPolicy::kNone);
  db.CreateLink(LinkKind::kDerive, oids[1], oids[3], {"edit"}, "",
                CarryPolicy::kNone);
  db.CreateLink(LinkKind::kDerive, oids[2], oids[3], {"edit"}, "",
                CarryPolicy::kNone);
  return oids;
}

/// One wave reaching D through two shards (via B and via C) must
/// deliver D once — record-multiset-equal to the 1-shard run, not
/// "equal modulo duplicates".
TEST(ShardedReconvergence, DiamondAcrossThreeShardsDeliversOnce) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.deterministic = true;
  ShardedEngine sharded(db, clock, options);
  const std::vector<OidId> oids = BuildDiamond(sharded, db);

  // The diamond spans three shards (round-robin deal: D shares A's).
  const ShardMap& map = sharded.shard_map();
  ASSERT_NE(map.ShardOf(oids[0]), map.ShardOf(oids[1]));
  ASSERT_NE(map.ShardOf(oids[0]), map.ShardOf(oids[2]));
  ASSERT_NE(map.ShardOf(oids[1]), map.ShardOf(oids[2]));

  sharded.PostEvent(Event("edit", Oid{"dia_a", "sch", 1}, Direction::kDown));
  sharded.Drain();

  const EngineStats total = sharded.AggregateEngineStats();
  EXPECT_EQ(total.propagated_deliveries, 3u);  // B, C, D — D once.
  EXPECT_EQ(total.dedup_suppressed, 1u);       // The second D sub-wave.
  EXPECT_EQ(sharded.stats().handoff_waves, 4u);
  EXPECT_EQ(sharded.stats().handoff_waves_truncated, 0u);
  // Every diamond link crosses a shard boundary here.
  EXPECT_EQ(sharded.stats().boundary_links, 4u);

  MetaDatabase one_db;
  SimClock one_clock;
  ShardedEngineOptions one_options;
  one_options.num_shards = 1;
  one_options.deterministic = true;
  ShardedEngine one(one_db, one_clock, one_options);
  BuildDiamond(one, one_db);
  one.PostEvent(Event("edit", Oid{"dia_a", "sch", 1}, Direction::kDown));
  one.Drain();

  EXPECT_EQ(SortedLines(one.JournalLines()),
            SortedLines(sharded.JournalLines()));
  EXPECT_EQ(one.AggregateEngineStats().propagated_deliveries,
            total.propagated_deliveries);
}

/// The same diamond under the worker pool: claims are arbitrated by
/// whichever sub-wave reaches D's lane first, but the delivered
/// multiset is schedule-invariant (also the TSan target for the claim
/// handshake).
TEST(ShardedReconvergence, ThreadedDiamondMatchesDeterministic) {
  constexpr int kWaves = 32;

  const auto run = [](bool deterministic) {
    MetaDatabase db;
    SimClock clock;
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.deterministic = deterministic;
    options.queue_capacity = 8;  // Tiny ring: exercise the spill path.
    ShardedEngine engine(db, clock, options);
    BuildDiamond(engine, db);
    for (int i = 0; i < kWaves; ++i) {
      engine.PostEvent(
          Event("edit", Oid{"dia_a", "sch", 1}, Direction::kDown,
                "wave" + std::to_string(i)));
    }
    engine.Drain();
    EXPECT_EQ(engine.AggregateEngineStats().propagated_deliveries,
              static_cast<size_t>(3 * kWaves));
    return SortedLines(engine.JournalLines());
  };

  EXPECT_EQ(run(/*deterministic=*/true), run(/*deterministic=*/false));
}

/// A direction post ('post note down', no 'to' clause) opens its own
/// wave scope — its own epoch for claims, visible in the journal rows —
/// but schedules inside the wave that spawned it: in deterministic mode
/// its cross-shard deliveries land before any later wave's work, like
/// the inline sub-wave of the single FIFO queue.
TEST(ShardedReconvergence, DirectionPostSchedulesInsideItsSpawningWave) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.deterministic = true;
  ShardedEngine sharded(db, clock, options);

  sharded.LoadBlueprintText(R"(blueprint dp
view default
endview
view src
  when ping do post note down done
endview
view sink
  when note do noted = yes done
  when touch do touched = yes done
endview
endblueprint)");

  const OidId src = sharded.OnCreateObject("blk_a", "src", "test");
  const OidId sink = sharded.OnCreateObject("blk_b", "sink", "test");
  sharded.shard_map().Rebalance();
  ASSERT_NE(sharded.shard_map().ShardOf(src),
            sharded.shard_map().ShardOf(sink));
  db.CreateLink(LinkKind::kDerive, src, sink, {"note"}, "",
                CarryPolicy::kNone);

  sharded.PostEvent(Event("ping", Oid{"blk_a", "src", 1}, Direction::kDown));
  sharded.PostEvent(Event("touch", Oid{"blk_b", "sink", 1}, Direction::kDown));
  sharded.Drain();

  EXPECT_EQ(*db.GetProperty(sink, "noted"), "yes");
  EXPECT_EQ(*db.GetProperty(sink, "touched"), "yes");

  // The sink shard processed the direction-posted note (spawned by the
  // first wave) before the second wave's touch, and the journal rows
  // carry the epochs: ping = 1, touch = 2, note minted third mid-wave.
  const events::EventJournal& journal =
      sharded.shard(sharded.shard_map().ShardOf(sink)).journal();
  ASSERT_EQ(journal.Size(), 2u);
  EXPECT_EQ(journal.At(0).event.name, "note");
  EXPECT_EQ(journal.At(0).event.wave_epoch, 3u);
  EXPECT_EQ(journal.At(1).event.name, "touch");
  EXPECT_EQ(journal.At(1).event.wave_epoch, 2u);
  EXPECT_EQ(sharded.stats().wave_epochs, 3u);
}

/// The hop cap is a backstop, not the termination mechanism: a chain of
/// *distinct* OIDs snaking across shards longer than the cap is still
/// truncated (and counted), while everything below the cap delivers.
TEST(ShardedReconvergence, HopCapBackstopStillGuardsDistinctChains) {
  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.deterministic = true;
  options.max_handoff_hops = 4;
  ShardedEngine sharded(db, clock, options);

  constexpr int kChain = 10;
  std::vector<OidId> oids;
  for (int i = 0; i < kChain; ++i) {
    oids.push_back(
        sharded.OnCreateObject("chain" + std::to_string(i), "sch", "test"));
  }
  sharded.shard_map().Rebalance();  // Round-robin: neighbours alternate.
  for (int i = 0; i + 1 < kChain; ++i) {
    ASSERT_NE(sharded.shard_map().ShardOf(oids[static_cast<size_t>(i)]),
              sharded.shard_map().ShardOf(oids[static_cast<size_t>(i + 1)]));
    db.CreateLink(LinkKind::kDerive, oids[static_cast<size_t>(i)],
                  oids[static_cast<size_t>(i + 1)], {"edit"}, "",
                  CarryPolicy::kNone);
  }

  sharded.PostEvent(Event("edit", Oid{"chain0", "sch", 1}, Direction::kDown));
  sharded.Drain();

  EXPECT_EQ(sharded.stats().handoff_waves_truncated, 1u);
  EXPECT_EQ(sharded.stats().handoff_waves, 4u);
  // chain1..chain4 delivered before the cap; nothing was duplicated.
  const EngineStats total = sharded.AggregateEngineStats();
  EXPECT_EQ(total.propagated_deliveries, 4u);
  EXPECT_EQ(total.dedup_suppressed, 0u);
}

// --- Per-shard propagation indexes -------------------------------------------

/// N shard indexes together hold ~1× the link graph (the pre-split
/// engine held N×), each shard answers only its own subtree, and a link
/// op costs O(1) index observer updates.
TEST(ShardedIndex, ShardIndexesHoldOneCopyOfLinkGraph) {
  WorkloadSpec spec;
  spec.blocks = 8;
  spec.events = 60;

  MetaDatabase plain_db;
  SimClock plain_clock;
  RunTimeEngine plain(plain_db, plain_clock);
  RunWorkload(PlainAdapter{plain}, plain_db, spec);

  MetaDatabase many_db;
  SimClock many_clock;
  ShardedEngineOptions options;
  options.num_shards = 4;
  options.deterministic = true;
  ShardedEngine many(many_db, many_clock, options);
  RunWorkload(ShardedAdapter{many}, many_db, spec);

  // Total entries across shard indexes == the unsharded index, not 4x.
  EXPECT_EQ(many.stats().index_entries,
            plain.propagation_index().entry_count());

  // Each shard holds a proper, consistent slice and actually served
  // lookups from it.
  size_t shards_with_entries = 0;
  for (uint32_t s = 0; s < many.num_shards(); ++s) {
    const engine::PropagationIndex& index = many.shard(s).propagation_index();
    std::string diff;
    EXPECT_TRUE(index.ConsistentWith(many_db, &diff)) << "shard " << s << ": "
                                                      << diff;
    EXPECT_LT(index.entry_count(), many.stats().index_entries);
    if (index.entry_count() > 0) ++shards_with_entries;
    EXPECT_GT(many.shard(s).stats().index_lookups, 0u) << "shard " << s;
  }
  EXPECT_GT(shards_with_entries, 1u);

  // One observer update per link op, not one per shard: the router
  // applied exactly as many updates as there are live links.
  size_t live_links = 0;
  many_db.ForEachLink([&](metadb::LinkId, const metadb::Link&) {
    ++live_links;
  });
  EXPECT_EQ(many.stats().index_observer_updates, live_links);
}

/// Rebalance after a subtree split migrates buckets between shard
/// indexes (no rebuild), keeps every shard consistent with a scoped
/// rescan, and waves crossing the new boundary still deliver.
TEST(ShardedIndex, RebalanceMigratesBucketsAndWavesStillDeliver) {
  const auto build = [](ShardedEngine& engine, MetaDatabase& db,
                        std::vector<OidId>& oids,
                        metadb::LinkId& splitting_link) {
    // Two use-link subtrees {A, B, C} and {D, E, F} with edit-derive
    // chains inside and one bridge B -> E.
    for (const char* block : {"ra", "rb", "rc", "rd", "re", "rf"}) {
      oids.push_back(engine.OnCreateObject(block, "sch", "test"));
    }
    splitting_link = db.CreateLink(LinkKind::kUse, oids[0], oids[1], {"edit"},
                                   "", CarryPolicy::kNone);
    db.CreateLink(LinkKind::kUse, oids[1], oids[2], {"edit"}, "",
                  CarryPolicy::kNone);
    db.CreateLink(LinkKind::kUse, oids[3], oids[4], {"edit"}, "",
                  CarryPolicy::kNone);
    db.CreateLink(LinkKind::kUse, oids[4], oids[5], {"edit"}, "",
                  CarryPolicy::kNone);
    db.CreateLink(LinkKind::kDerive, oids[1], oids[4], {"edit"}, "",
                  CarryPolicy::kNone);
    engine.shard_map().Rebalance();
    // Split {A} off {B, C}: dirties the map until RebalanceShards.
    db.DeleteLink(splitting_link);
  };

  const auto drive = [](ShardedEngine& engine) {
    engine.RebalanceShards();
    engine.PostEvent(Event("edit", Oid{"rb", "sch", 1}, Direction::kDown));
    engine.Drain();
    return SortedLines(engine.JournalLines());
  };

  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 4;
  options.deterministic = true;
  ShardedEngine many(db, clock, options);
  std::vector<OidId> oids;
  metadb::LinkId splitting_link;
  build(many, db, oids, splitting_link);

  const size_t entries_before = many.stats().index_entries;
  const std::vector<std::string> many_lines = drive(many);

  // The re-deal moved subtrees (and with them, index buckets) without
  // changing the total entry count — migration, not rebuild.
  EXPECT_GT(many.stats().index_migrated_sources, 0u);
  EXPECT_EQ(many.stats().index_entries, entries_before);
  for (uint32_t s = 0; s < many.num_shards(); ++s) {
    std::string diff;
    EXPECT_TRUE(many.shard(s).propagation_index().ConsistentWith(db, &diff))
        << "shard " << s << ": " << diff;
  }

  MetaDatabase one_db;
  SimClock one_clock;
  ShardedEngineOptions one_options;
  one_options.num_shards = 1;
  one_options.deterministic = true;
  ShardedEngine one(one_db, one_clock, one_options);
  std::vector<OidId> one_oids;
  metadb::LinkId one_split;
  build(one, one_db, one_oids, one_split);

  EXPECT_EQ(drive(one), many_lines);
}

// --- Batched handoff & seed-batch splitting ----------------------------------

/// One hub block (its own subtree) with derive links to `spokes`
/// foreign single-block subtrees, every link propagating "edit": a
/// boundary-heavy wave whose receivers interleave across all shards.
struct HubSpokes {
  OidId hub;
  std::vector<OidId> spokes;
};

HubSpokes BuildHubSpokes(ShardedEngine& engine, MetaDatabase& db,
                         int spokes) {
  HubSpokes design;
  design.hub = engine.OnCreateObject("hub", "sch", "test");
  for (int i = 0; i < spokes; ++i) {
    design.spokes.push_back(
        engine.OnCreateObject("spoke" + std::to_string(i), "sch", "test"));
  }
  engine.shard_map().Rebalance();  // Round-robin: spokes cycle the shards.
  for (const OidId spoke : design.spokes) {
    db.CreateLink(LinkKind::kDerive, design.hub, spoke, {"edit"}, "",
                  CarryPolicy::kNone);
  }
  return design;
}

std::vector<std::string> DriveHubWave(ShardedEngine& engine) {
  engine.PostEvent(Event("edit", Oid{"hub", "sch", 1}, Direction::kDown));
  engine.Drain();
  return SortedLines(engine.JournalLines());
}

/// Batched handoff posts ONE aggregated sub-wave per (epoch, target
/// shard) no matter how receivers interleave; the unbatched baseline
/// merges only consecutive same-shard runs (here: runs of length one).
TEST(ShardedBatching, HandoffAggregatesPerTargetShard) {
  constexpr int kSpokes = 24;

  const auto run = [&](bool batched, ShardedStats& stats_out) {
    MetaDatabase db;
    SimClock clock;
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.deterministic = true;
    options.batched_handoff = batched;
    ShardedEngine engine(db, clock, options);
    BuildHubSpokes(engine, db, kSpokes);
    const std::vector<std::string> lines = DriveHubWave(engine);
    stats_out = engine.stats();
    return lines;
  };

  ShardedStats batched_stats;
  ShardedStats unbatched_stats;
  const std::vector<std::string> batched_lines = run(true, batched_stats);
  const std::vector<std::string> unbatched_lines = run(false, unbatched_stats);

  // Same deliveries either way...
  EXPECT_EQ(batched_lines, unbatched_lines);
  EXPECT_EQ(batched_stats.handoff_seeds, unbatched_stats.handoff_seeds);
  // ...but the batched run posts one task per foreign shard while the
  // unbatched run pays one per receiver (round-robin spokes never put
  // two consecutive receivers on the same shard).
  EXPECT_EQ(batched_stats.handoff_waves, 2u);
  EXPECT_EQ(unbatched_stats.handoff_waves, unbatched_stats.handoff_seeds);
  EXPECT_GT(unbatched_stats.handoff_waves, batched_stats.handoff_waves);
}

/// A batch above max_batch_seeds splits into consecutive FIFO chunks:
/// nothing is dropped, nothing reorders (the target shard's journal
/// delivers the seeds in handoff order), and the split is visible in
/// the stats.
TEST(ShardedBatching, SeedBatchSplitsKeepFifoOrder) {
  constexpr int kSpokes = 23;
  constexpr size_t kChunk = 4;

  MetaDatabase db;
  SimClock clock;
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.deterministic = true;
  options.max_batch_seeds = kChunk;
  ShardedEngine engine(db, clock, options);

  // All spokes in ONE foreign subtree: a single pending wave whose
  // seed list far exceeds the chunk size.
  const OidId hub = engine.OnCreateObject("hub", "sch", "test");
  const OidId root = engine.OnCreateObject("faraway", "sch", "test");
  std::vector<OidId> spokes{root};
  for (int i = 1; i < kSpokes; ++i) {
    const OidId spoke =
        engine.OnCreateObject("faraway_s" + std::to_string(i), "sch", "test");
    db.CreateLink(LinkKind::kUse, root, spoke, {}, "", CarryPolicy::kNone);
    spokes.push_back(spoke);
  }
  engine.shard_map().Rebalance();
  ASSERT_NE(engine.shard_map().ShardOf(hub), engine.shard_map().ShardOf(root));
  for (const OidId spoke : spokes) {
    db.CreateLink(LinkKind::kDerive, hub, spoke, {"edit"}, "",
                  CarryPolicy::kNone);
  }

  engine.PostEvent(Event("edit", Oid{"hub", "sch", 1}, Direction::kDown));
  engine.Drain();

  const ShardedStats stats = engine.stats();
  const size_t expected_chunks = (kSpokes + kChunk - 1) / kChunk;
  EXPECT_EQ(stats.handoff_seeds, static_cast<size_t>(kSpokes));
  EXPECT_EQ(stats.handoff_waves, expected_chunks);
  EXPECT_EQ(stats.seed_batch_splits, expected_chunks - 1);

  // The foreign shard delivered every spoke exactly once, in handoff
  // (= adjacency) order across the chunk boundaries.
  const uint32_t far_shard = engine.shard_map().ShardOf(root);
  const events::EventJournal& journal = engine.shard(far_shard).journal();
  ASSERT_EQ(journal.Size(), static_cast<size_t>(kSpokes));
  EXPECT_EQ(journal.At(0).event.target.block, "faraway");
  for (int i = 1; i < kSpokes; ++i) {
    EXPECT_EQ(journal.At(static_cast<size_t>(i)).event.target.block,
              "faraway_s" + std::to_string(i))
        << "delivery " << i << " out of order";
  }
}

/// Chunked batches wider than the sub-wave ring must spill FIFO-intact
/// through the locked overflow deque — no drops, no duplicates — and
/// the delivered multiset must match the deterministic run.
TEST(ShardedBatching, SeedBatchSpillsAtRingBoundaryWithoutLoss) {
  constexpr int kSpokes = 40;
  constexpr int kWaves = 16;

  const auto run = [&](bool deterministic) {
    MetaDatabase db;
    SimClock clock;
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.deterministic = deterministic;
    options.max_batch_seeds = 2;  // Many tasks per wave...
    options.queue_capacity = 4;   // ...through a tiny ring: forced spill.
    ShardedEngine engine(db, clock, options);
    BuildHubSpokes(engine, db, kSpokes);
    for (int i = 0; i < kWaves; ++i) {
      engine.PostEvent(Event("edit", Oid{"hub", "sch", 1}, Direction::kDown,
                             "w" + std::to_string(i)));
    }
    engine.Drain();
    EXPECT_EQ(engine.AggregateEngineStats().propagated_deliveries,
              static_cast<size_t>(kSpokes * kWaves));
    if (!deterministic) {
      EXPECT_GT(engine.stats().ring_overflows, 0u);
    }
    return SortedLines(engine.JournalLines());
  };

  EXPECT_EQ(run(/*deterministic=*/true), run(/*deterministic=*/false));
}

// --- Lane stealing -----------------------------------------------------------

/// The journal ordering oracle for top-level FIFO: a shard's externally
/// originated records must appear in strictly increasing wave-epoch
/// order (intake mints epochs in post order; only sub-waves may be
/// stolen, so a stalled lane's queued top-level waves never reorder).
void ExpectTopLevelFifo(const ShardedEngine& engine) {
  for (uint32_t s = 0; s < engine.num_shards(); ++s) {
    const events::EventJournal& journal = engine.shard(s).journal();
    uint64_t last_epoch = 0;
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      if (record.event.origin != events::EventOrigin::kExternal) continue;
      EXPECT_GT(record.event.wave_epoch, last_epoch)
          << "shard " << s << " reordered top-level waves (record " << i
          << ")";
      last_epoch = record.event.wave_epoch;
    }
  }
}

/// A stalled lane's sub-waves get stolen by idle workers while its
/// top-level waves stay FIFO: shard H grinds a long queue of wide
/// local waves while shard L floods H with cross-shard sub-waves; the
/// worker that drains L goes idle and must steal H's queued sub-waves.
/// Delivered multiset stays equal to the 1-shard reference.
TEST(ShardedSteal, StalledLaneSubWavesAreStolenTopLevelFifoHolds) {
  constexpr int kChildren = 400;
  constexpr int kBridged = 200;
  constexpr int kHubEvents = 30;
  constexpr int kFeederEvents = 60;

  const auto build = [&](ShardedEngine& engine, MetaDatabase& db) {
    // Heavy subtree: hub + kChildren use-linked children, all
    // propagating "edit" (wide, slow top-level waves).
    const OidId hub = engine.OnCreateObject("heavy", "sch", "test");
    std::vector<OidId> children;
    for (int i = 0; i < kChildren; ++i) {
      const OidId child =
          engine.OnCreateObject("heavy_c" + std::to_string(i), "sch", "test");
      db.CreateLink(LinkKind::kUse, hub, child, {"edit"}, "",
                    CarryPolicy::kNone);
      children.push_back(child);
    }
    // Light subtree: one feeder whose derive links bridge into the
    // heavy shard's children.
    const OidId feeder = engine.OnCreateObject("feeder", "sch", "test");
    engine.shard_map().Rebalance();
    for (int i = 0; i < kBridged; ++i) {
      db.CreateLink(LinkKind::kDerive, feeder,
                    children[static_cast<size_t>(i)], {"edit"}, "",
                    CarryPolicy::kNone);
    }
  };

  const auto post_all = [&](ShardedEngine& engine) {
    for (int i = 0; i < kHubEvents; ++i) {
      engine.PostEvent(Event("edit", Oid{"heavy", "sch", 1}, Direction::kDown,
                             "h" + std::to_string(i)));
    }
    for (int i = 0; i < kFeederEvents; ++i) {
      engine.PostEvent(Event("edit", Oid{"feeder", "sch", 1},
                             Direction::kDown, "f" + std::to_string(i)));
    }
    engine.Drain();
  };

  // 1-shard deterministic reference.
  MetaDatabase ref_db;
  SimClock ref_clock;
  ShardedEngineOptions ref_options;
  ref_options.num_shards = 1;
  ref_options.deterministic = true;
  ShardedEngine reference(ref_db, ref_clock, ref_options);
  build(reference, ref_db);
  post_all(reference);
  const std::vector<std::string> expected =
      SortedLines(reference.JournalLines());

  // The steal is scheduling-dependent; retry a few times, asserting
  // the correctness invariants on every attempt.
  size_t stolen = 0;
  for (int attempt = 0; attempt < 5 && stolen == 0; ++attempt) {
    MetaDatabase db;
    SimClock clock;
    ShardedEngineOptions options;
    options.num_shards = 2;
    options.worker_threads = 2;
    ShardedEngine engine(db, clock, options);
    build(engine, db);
    post_all(engine);

    EXPECT_EQ(expected, SortedLines(engine.JournalLines()))
        << "attempt " << attempt;
    ExpectTopLevelFifo(engine);
    EXPECT_EQ(engine.stats().handoff_seeds,
              static_cast<size_t>(kBridged * kFeederEvents));
    // The shared claim stores merged out completed waves behind the
    // published epoch-versioned floor (thousands of claims ran).
    EXPECT_GT(engine.stats().claim_purge_floor, 0u);
    stolen = engine.stats().stolen_subwaves;
  }
  EXPECT_GT(stolen, 0u) << "no sub-wave was ever stolen across attempts";
}

// --- ShardMap ----------------------------------------------------------------

TEST(ShardMap, GroupsBlocksBySubtreeAndIgnoresDeriveLinks) {
  MetaDatabase db;
  ShardMap map(db, 4);

  const OidId top = db.CreateNextVersion("top", "sch", "t", 0);
  const OidId child = db.CreateNextVersion("top_a", "sch", "t", 0);
  const OidId other = db.CreateNextVersion("lib", "sch", "t", 0);

  db.CreateLink(LinkKind::kUse, top, child, {"edit"}, "", CarryPolicy::kNone);
  EXPECT_EQ(map.RootBlockOf(child), "top");
  EXPECT_EQ(map.ShardOf(child), map.ShardOf(top));

  // Derive links do not merge subtrees.
  db.CreateLink(LinkKind::kDerive, other, child, {"edit"}, "",
                CarryPolicy::kNone);
  EXPECT_EQ(map.RootBlockOf(other), "lib");
  EXPECT_FALSE(map.dirty());

  // All versions and views of a block share its group.
  const OidId top_v2 = db.CreateNextVersion("top", "sch", "t", 0);
  const OidId top_net = db.CreateNextVersion("top", "net", "t", 0);
  EXPECT_EQ(map.ShardOf(top_v2), map.ShardOf(top));
  EXPECT_EQ(map.ShardOf(top_net), map.ShardOf(top));
}

TEST(ShardMap, UseLinkRemovalDirtiesAndRebalanceSplits) {
  MetaDatabase db;
  ShardMap map(db, 4);

  const OidId top = db.CreateNextVersion("top", "sch", "t", 0);
  const OidId child = db.CreateNextVersion("sub", "sch", "t", 0);
  const metadb::LinkId link =
      db.CreateLink(LinkKind::kUse, top, child, {}, "", CarryPolicy::kNone);
  ASSERT_EQ(map.RootBlockOf(child), "top");

  db.DeleteLink(link);
  EXPECT_TRUE(map.dirty());
  map.Rebalance();
  EXPECT_FALSE(map.dirty());
  EXPECT_EQ(map.RootBlockOf(child), "sub");
  EXPECT_EQ(map.RootBlockOf(top), "top");
}

/// Oracle: after a random sequence of use-link adds, endpoint moves and
/// deletions plus a rebalance, every OID's root block must match a
/// from-scratch recomputation, and every block of a component must sit
/// on the same (valid) shard.
TEST(ShardMap, OracleAfterRandomLinkMoves) {
  for (const uint64_t seed : {3u, 17u, 2026u}) {
    MetaDatabase db;
    constexpr uint32_t kShards = 4;
    ShardMap map(db, kShards);
    Rng rng(seed);

    // A pool of single-view blocks (use links need one view type).
    std::vector<OidId> oids;
    for (int i = 0; i < 24; ++i) {
      oids.push_back(
          db.CreateNextVersion("b" + std::to_string(i), "sch", "t", 0));
    }
    std::vector<metadb::LinkId> links;
    const auto random_oid = [&] {
      return oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
    };
    for (int step = 0; step < 120; ++step) {
      const double draw = rng.UniformDouble();
      if (draw < 0.55 || links.empty()) {
        const OidId from = random_oid();
        const OidId to = random_oid();
        if (from == to) continue;
        links.push_back(db.CreateLink(LinkKind::kUse, from, to, {}, "",
                                      CarryPolicy::kNone));
      } else if (draw < 0.8) {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(links.size()) - 1));
        const metadb::LinkId link = links[pick];
        if (!db.GetLink(link).alive) continue;
        const bool endpoint_from = rng.Chance(0.5);
        const OidId target = random_oid();
        const metadb::Link& current = db.GetLink(link);
        const OidId other = endpoint_from ? current.to : current.from;
        if (target == other) continue;
        db.MoveLinkEndpoint(link, endpoint_from, target);
      } else {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(links.size()) - 1));
        if (db.GetLink(links[pick]).alive) db.DeleteLink(links[pick]);
      }
    }

    map.Rebalance();

    // Oracle: recompute components over live use links; the root is the
    // earliest-created block of the component.
    std::map<std::string, std::set<std::string>> adjacency;
    db.ForEachLink([&](metadb::LinkId, const metadb::Link& link) {
      if (link.kind != LinkKind::kUse) return;
      const std::string& from = db.GetObject(link.from).oid.block;
      const std::string& to = db.GetObject(link.to).oid.block;
      adjacency[from].insert(to);
      adjacency[to].insert(from);
    });
    const auto oracle_root = [&](const std::string& block) {
      std::set<std::string> component{block};
      std::vector<std::string> frontier{block};
      while (!frontier.empty()) {
        const std::string current = frontier.back();
        frontier.pop_back();
        for (const std::string& next : adjacency[current]) {
          if (component.insert(next).second) frontier.push_back(next);
        }
      }
      // Creation order is b0, b1, ...: the numerically smallest index
      // was created (and interned) first.
      std::string best = block;
      int best_index = std::stoi(block.substr(1));
      for (const std::string& member : component) {
        const int index = std::stoi(member.substr(1));
        if (index < best_index) {
          best_index = index;
          best = member;
        }
      }
      return best;
    };

    for (const OidId id : oids) {
      const std::string& block = db.GetObject(id).oid.block;
      EXPECT_EQ(map.RootBlockOf(id), oracle_root(block))
          << "seed " << seed << " block " << block;
      EXPECT_LT(map.ShardOf(id), kShards);
      // The group circles (what bucket migration enumerates) must agree
      // with the forest: every member shares the root.
      size_t members = 0;
      map.ForEachGroupMember(id, [&](OidId member) {
        ++members;
        EXPECT_EQ(map.RootBlockOf(member), map.RootBlockOf(id))
            << "seed " << seed << " block " << block;
      });
      EXPECT_GE(members, 1u);
    }
    // Same component => same shard.
    for (const OidId a : oids) {
      for (const OidId b : oids) {
        if (map.RootBlockOf(a) == map.RootBlockOf(b)) {
          EXPECT_EQ(map.ShardOf(a), map.ShardOf(b));
        }
      }
    }
  }
}

}  // namespace
}  // namespace damocles
