// Tests for the propagation index: the engine's indexed wave-expansion
// fast path must stay consistent with a full link-graph rescan through
// every kind of link mutation, and the indexed engine must behave
// identically to the pre-index (linear scan) engine.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "engine/propagation_index.hpp"
#include "engine/run_time_engine.hpp"
#include "metadb/meta_database.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace damocles {
namespace {

using engine::PropagationIndex;
using engine::RunTimeEngine;
using events::Direction;
using metadb::CarryPolicy;
using metadb::LinkId;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::OidId;

/// A database + engine pair; the engine's index is maintained through
/// the link-observer protocol from construction on.
struct Fixture {
  MetaDatabase db;
  SimClock clock;
  RunTimeEngine engine{db, clock};
};

std::string MustBeConsistent(const RunTimeEngine& engine,
                             const MetaDatabase& db) {
  std::string diff;
  return engine.propagation_index().ConsistentWith(db, &diff) ? std::string()
                                                              : diff;
}

TEST(PropagationIndex, LinkAddUpdatesBothDirections) {
  Fixture f;
  const OidId a = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  const LinkId link = f.db.CreateLink(LinkKind::kDerive, a, b, {"edit", "ok"},
                                      "derive_from", CarryPolicy::kNone);

  const PropagationIndex& index = f.engine.propagation_index();
  ASSERT_NE(index.Receivers(a, Direction::kDown, "edit"), nullptr);
  EXPECT_EQ(index.Receivers(a, Direction::kDown, "edit")->front().neighbor, b);
  EXPECT_EQ(index.Receivers(a, Direction::kDown, "edit")->front().link, link);
  ASSERT_NE(index.Receivers(b, Direction::kUp, "ok"), nullptr);
  EXPECT_EQ(index.Receivers(b, Direction::kUp, "ok")->front().neighbor, a);
  // Wrong direction / unknown event / unlinked OID: no receivers.
  EXPECT_EQ(index.Receivers(a, Direction::kUp, "edit"), nullptr);
  EXPECT_EQ(index.Receivers(a, Direction::kDown, "nosuch"), nullptr);
  EXPECT_EQ(index.Receivers(b, Direction::kDown, "edit"), nullptr);
  EXPECT_EQ(MustBeConsistent(f.engine, f.db), "");
}

TEST(PropagationIndex, LinkDeleteRemovesEntries) {
  Fixture f;
  const OidId a = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  const OidId c = f.db.CreateNextVersion("c", "net", "t", 0);
  const LinkId ab = f.db.CreateLink(LinkKind::kDerive, a, b, {"edit"}, "",
                                    CarryPolicy::kNone);
  f.db.CreateLink(LinkKind::kDerive, a, c, {"edit"}, "", CarryPolicy::kNone);

  f.db.DeleteLink(ab);
  const PropagationIndex& index = f.engine.propagation_index();
  const auto* bucket = index.Receivers(a, Direction::kDown, "edit");
  ASSERT_NE(bucket, nullptr);
  ASSERT_EQ(bucket->size(), 1u);
  EXPECT_EQ(bucket->front().neighbor, c);
  EXPECT_EQ(index.Receivers(b, Direction::kUp, "edit"), nullptr);
  EXPECT_EQ(MustBeConsistent(f.engine, f.db), "");
}

TEST(PropagationIndex, DeleteObjectDropsItsLinks) {
  Fixture f;
  const OidId a = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  const OidId c = f.db.CreateNextVersion("c", "gds", "t", 0);
  f.db.CreateLink(LinkKind::kDerive, a, b, {"edit"}, "", CarryPolicy::kNone);
  f.db.CreateLink(LinkKind::kDerive, b, c, {"edit"}, "", CarryPolicy::kNone);

  f.db.DeleteObject(b);
  const PropagationIndex& index = f.engine.propagation_index();
  EXPECT_EQ(index.Receivers(a, Direction::kDown, "edit"), nullptr);
  EXPECT_EQ(index.Receivers(c, Direction::kUp, "edit"), nullptr);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_EQ(MustBeConsistent(f.engine, f.db), "");
}

TEST(PropagationIndex, EndpointMovePatchesNeighborAndRelocatesBucket) {
  Fixture f;
  const OidId a1 = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  const LinkId link = f.db.CreateLink(LinkKind::kDerive, a1, b, {"edit"}, "",
                                      CarryPolicy::kMove);
  const OidId a2 = f.db.CreateNextVersion("a", "sch", "t", 1);

  // Shift the source endpoint to the new version (paper Fig. 3).
  f.db.MoveLinkEndpoint(link, /*endpoint_from=*/true, a2);
  const PropagationIndex& index = f.engine.propagation_index();
  EXPECT_EQ(index.Receivers(a1, Direction::kDown, "edit"), nullptr);
  ASSERT_NE(index.Receivers(a2, Direction::kDown, "edit"), nullptr);
  EXPECT_EQ(index.Receivers(a2, Direction::kDown, "edit")->front().neighbor, b);
  ASSERT_NE(index.Receivers(b, Direction::kUp, "edit"), nullptr);
  EXPECT_EQ(index.Receivers(b, Direction::kUp, "edit")->front().neighbor, a2);
  EXPECT_EQ(MustBeConsistent(f.engine, f.db), "");
}

TEST(PropagationIndex, SetLinkPropagatesReindexes) {
  Fixture f;
  const OidId a = f.db.CreateNextVersion("a", "sch", "t", 0);
  const OidId b = f.db.CreateNextVersion("b", "net", "t", 0);
  const LinkId link = f.db.CreateLink(LinkKind::kDerive, a, b, {"edit"}, "",
                                      CarryPolicy::kNone);

  f.db.SetLinkPropagates(link, {"ok", "fail"});
  const PropagationIndex& index = f.engine.propagation_index();
  EXPECT_EQ(index.Receivers(a, Direction::kDown, "edit"), nullptr);
  ASSERT_NE(index.Receivers(a, Direction::kDown, "ok"), nullptr);
  ASSERT_NE(index.Receivers(b, Direction::kUp, "fail"), nullptr);
  EXPECT_EQ(MustBeConsistent(f.engine, f.db), "");
}

/// The oracle test the satellite asks for: a randomized storm of link
/// add / delete / endpoint-move / PROPAGATE-rewrite operations, with the
/// incrementally maintained index checked against a full rescan of the
/// link graph after every mutation batch.
TEST(PropagationIndex, RandomMutationStormMatchesFullRescan) {
  Fixture f;
  Rng rng(0xda40c1e5);

  const std::vector<std::string> kEvents = {"edit", "ok", "fail", "ckin",
                                            "outofdate"};
  std::vector<OidId> objects;
  for (int i = 0; i < 24; ++i) {
    objects.push_back(f.db.CreateNextVersion("blk" + std::to_string(i), "v",
                                             "t", i));
  }
  std::vector<LinkId> live_links;

  const auto random_propagates = [&]() {
    std::vector<std::string> propagates;
    for (const std::string& event : kEvents) {
      if (rng.Chance(0.4)) propagates.push_back(event);
    }
    return propagates;
  };

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.UniformDouble();
    if (roll < 0.45 || live_links.empty()) {
      const OidId from =
          objects[static_cast<size_t>(rng.UniformInt(0, 23))];
      const OidId to = objects[static_cast<size_t>(rng.UniformInt(0, 23))];
      if (from == to) continue;
      live_links.push_back(f.db.CreateLink(LinkKind::kDerive, from, to,
                                           random_propagates(), "",
                                           CarryPolicy::kNone));
    } else if (roll < 0.65) {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live_links.size() - 1));
      f.db.DeleteLink(live_links[pick]);
      live_links.erase(live_links.begin() + pick);
    } else if (roll < 0.85) {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live_links.size() - 1));
      const bool endpoint_from = rng.Chance(0.5);
      const OidId target =
          objects[static_cast<size_t>(rng.UniformInt(0, 23))];
      const metadb::Link& link = f.db.GetLink(live_links[pick]);
      const OidId other = endpoint_from ? link.to : link.from;
      if (target == other) continue;
      f.db.MoveLinkEndpoint(live_links[pick], endpoint_from, target);
    } else {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live_links.size() - 1));
      f.db.SetLinkPropagates(live_links[pick], random_propagates());
    }

    ASSERT_EQ(MustBeConsistent(f.engine, f.db), "") << "after step " << step;
  }
  // The storm must have actually exercised the index.
  EXPECT_GT(f.engine.propagation_index().entry_count(), 0u);
}

/// Bucket order must equal the order a full adjacency scan visits the
/// qualifying links — that is what makes the indexed engine's delivery
/// order identical to the pre-index engine's.
TEST(PropagationIndex, BucketOrderMatchesAdjacencyScan) {
  Fixture f;
  const OidId hub = f.db.CreateNextVersion("hub", "v", "t", 0);
  std::vector<OidId> spokes;
  for (int i = 0; i < 12; ++i) {
    spokes.push_back(
        f.db.CreateNextVersion("spoke" + std::to_string(i), "v", "t", 0));
  }
  std::vector<LinkId> links;
  for (int i = 0; i < 12; ++i) {
    // Every third link does not propagate "edit".
    std::vector<std::string> propagates =
        (i % 3 == 2) ? std::vector<std::string>{"ok"}
                     : std::vector<std::string>{"edit", "ok"};
    links.push_back(f.db.CreateLink(LinkKind::kDerive, hub, spokes[i],
                                    std::move(propagates), "",
                                    CarryPolicy::kNone));
  }
  f.db.DeleteLink(links[4]);
  f.db.DeleteLink(links[7]);

  const auto scan_order = [&]() {
    std::vector<OidId> order;
    for (const LinkId id : f.db.OutLinks(hub)) {
      const metadb::Link& link = f.db.GetLink(id);
      if (link.Propagates("edit")) order.push_back(link.to);
    }
    return order;
  };
  const auto* bucket =
      f.engine.propagation_index().Receivers(hub, Direction::kDown, "edit");
  ASSERT_NE(bucket, nullptr);
  std::vector<OidId> indexed;
  for (const auto& entry : *bucket) indexed.push_back(entry.neighbor);
  EXPECT_EQ(indexed, scan_order());
}

/// Differential test: the EDTC workload processed by an indexed engine
/// and by a pre-index (linear scan) engine must produce identical
/// journals and identical propagation statistics.
TEST(PropagationIndex, IndexedEngineMatchesScanEngine) {
  const auto run = [](bool use_index) {
    engine::ServerOptions options;
    options.engine.use_propagation_index = use_index;
    auto server = std::make_unique<engine::ProjectServer>("diff", options);
    server->InitializeBlueprint(workload::EdtcBlueprintText());

    workload::HierarchySpec spec;
    spec.depth = 3;
    spec.fanout = 2;
    spec.view = "HDL_model";
    spec.root_block = "CPU";
    workload::BuildHierarchy(*server, spec);
    // Check-ins ripple ckin waves (and carry links across versions).
    for (int round = 0; round < 3; ++round) {
      server->CheckIn("CPU", "HDL_model", "rev", "alice");
      server->CheckIn("CPU", "schematic", "rev", "bob");
      server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model," +
                                 std::to_string(round + 2) + " good",
                             "alice");
    }
    // Phase switch: loosen (PROPAGATE lists emptied by retemplating),
    // work under the loose blueprint, tighten again. Covers
    // SetLinkPropagates bucket rebuilds and the blueprint-install
    // Rebuild on a link graph reordered by carry moves.
    server->InitializeBlueprint(R"(blueprint loosened
                                   view default
                                   endview
                                   endblueprint)");
    server->CheckIn("CPU", "HDL_model", "loose rev", "alice");
    server->InitializeBlueprint(workload::EdtcBlueprintText());
    server->CheckIn("CPU", "HDL_model", "strict rev", "alice");
    server->CheckIn("CPU", "schematic", "strict rev", "bob");
    return server;
  };

  const auto indexed = run(true);
  const auto scanning = run(false);

  EXPECT_EQ(indexed->engine().journal().Dump(),
            scanning->engine().journal().Dump());
  const engine::EngineStats& a = indexed->engine().stats();
  const engine::EngineStats& b = scanning->engine().stats();
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.propagated_deliveries, b.propagated_deliveries);
  EXPECT_EQ(a.wave_deliveries, b.wave_deliveries);
  EXPECT_EQ(a.waves_started, b.waves_started);
  EXPECT_EQ(a.wave_batches, b.wave_batches);
  EXPECT_EQ(a.property_writes, b.property_writes);
  EXPECT_EQ(a.max_wave_extent, b.max_wave_extent);
  // Each engine used its own expansion path.
  EXPECT_GT(a.index_lookups, 0u);
  EXPECT_EQ(a.links_scanned, 0u);
  EXPECT_EQ(b.index_lookups, 0u);
  // The indexed server's database saw real mutations throughout.
  EXPECT_EQ(MustBeConsistent(indexed->engine(), indexed->database()), "");
}

/// Re-installing a blueprint between phases retemplates every live link
/// (possibly rewriting PROPAGATE lists wholesale); the index must follow.
TEST(PropagationIndex, RetemplateKeepsIndexConsistent) {
  auto server = testutil::MakeEdtcServer();
  workload::HierarchySpec spec;
  spec.depth = 2;
  spec.fanout = 3;
  spec.view = "HDL_model";
  spec.root_block = "CPU";
  workload::BuildHierarchy(*server, spec);
  server->CheckIn("CPU", "HDL_model", "rev", "alice");
  ASSERT_EQ(MustBeConsistent(server->engine(), server->database()), "");

  // A loosened phase: a minimal blueprint whose templates propagate
  // nothing — retemplate_on_init rewrites every link's PROPAGATE list.
  server->InitializeBlueprint(R"(blueprint loosened
                                 view default
                                 endview
                                 endblueprint)");
  EXPECT_EQ(MustBeConsistent(server->engine(), server->database()), "");
  server->CheckIn("CPU", "HDL_model", "rev2", "alice");
  EXPECT_EQ(MustBeConsistent(server->engine(), server->database()), "");
}

}  // namespace
}  // namespace damocles
