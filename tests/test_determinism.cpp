// System-level determinism and replay: the audit journal of one run,
// replayed into a fresh server, reproduces identical meta-data. This is
// the property that makes the journal an audit trail and enables
// post-mortem analysis of a project's history.
#include <gtest/gtest.h>

#include "metadb/persistence.hpp"
#include "query/query.hpp"
#include "test_util.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"
#include "workload/generators.hpp"

namespace damocles {
namespace {

TEST(Determinism, StochasticSessionsReproduceByteIdenticalDatabases) {
  workload::FlowSpec flow;
  flow.n_views = 5;
  workload::TraceSpec trace;
  trace.n_actions = 300;
  trace.seed = 2024;

  auto run = [&]() {
    engine::ProjectServer server("det");
    server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "det"));
    workload::InstantiateFlow(server, flow, "a");
    workload::InstantiateFlow(server, flow, "b");
    workload::InstantiateFlow(server, flow, "c");
    workload::RunDesignSession(server, flow, {"a", "b", "c"}, trace);
    return metadb::SaveDatabaseString(server.database());
  };

  EXPECT_EQ(run(), run());
}

TEST(Determinism, DifferentSeedsProduceDifferentHistories) {
  workload::FlowSpec flow;
  flow.n_views = 3;

  auto run = [&](uint64_t seed) {
    workload::TraceSpec trace;
    trace.n_actions = 100;
    trace.seed = seed;
    engine::ProjectServer server("det");
    server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "det"));
    workload::InstantiateFlow(server, flow, "a");
    workload::RunDesignSession(server, flow, {"a"}, trace);
    return metadb::SaveDatabaseString(server.database());
  };
  EXPECT_NE(run(1), run(2));
}

TEST(Determinism, EdtcScenarioSurvivesPersistenceRoundTrip) {
  auto server = testutil::MakeEdtcServer();
  tools::ToolScheduler scheduler(*server);
  tools::Netlister netlister(*server);
  scheduler.InstallStandardScripts(netlister);
  workload::RunEdtcScenario(*server, scheduler);

  const std::string saved = metadb::SaveDatabaseString(server->database());
  const metadb::MetaDatabase reloaded = metadb::LoadDatabaseString(saved);
  EXPECT_EQ(metadb::SaveDatabaseString(reloaded), saved);

  // The reloaded database answers the same queries.
  const auto stale = query::ProjectQuery(reloaded).OutOfDate();
  EXPECT_EQ(stale.size(), 4u);
}

TEST(Determinism, JournalSeparatesExternalFromDerivedTraffic) {
  auto server = testutil::MakeEdtcServer();
  tools::ToolScheduler scheduler(*server);
  tools::Netlister netlister(*server);
  scheduler.InstallStandardScripts(netlister);
  workload::RunEdtcScenario(*server, scheduler);

  const auto& journal = server->engine().journal();
  const auto external = journal.ExternalTrace();
  EXPECT_LT(external.size(), journal.Size());
  for (const auto& event : external) {
    EXPECT_TRUE(event.origin == events::EventOrigin::kExternal ||
                event.origin == events::EventOrigin::kSystem);
  }
}

}  // namespace
}  // namespace damocles
