// Incremental + background checkpointing and WAL segment retention:
//  * delta persistence round-trips and rejects wrong bases;
//  * base -> delta -> delta chains recover byte-equal state;
//  * the chain limit and a missing base silently force full checkpoints;
//  * failed auto-checkpoints re-arm on the backoff schedule instead of
//    re-attempting on every op (the checkpoint-failure storm);
//  * segment retention prunes below the committed floor, failed
//    removals surface as a prune-behind warning, and recovery handles
//    leftover .tmp manifests, orphaned checkpoint files and partially
//    pruned segment directories.
// The randomized crash-point fuzz lives in test_wal_crash_fuzz.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "engine/project_server.hpp"
#include "engine/wire_session.hpp"
#include "events/journal.hpp"
#include "metadb/persistence.hpp"
#include "metadb/recovery.hpp"
#include "test_util.hpp"

namespace damocles {
namespace {

using engine::CheckpointMode;
using engine::ProjectServer;
using engine::ServerHealth;
using engine::ServerOptions;
using engine::WalStatus;
using engine::WireSession;

/// A per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("damocles-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  std::filesystem::path path() const { return path_; }

 private:
  std::filesystem::path path_;
};

ServerOptions DurableOptions(const std::string& wal_dir, uint32_t shards = 1) {
  ServerOptions options;
  options.wal_dir = wal_dir;
  options.num_shards = shards;
  if (shards > 1) options.deterministic_shards = true;
  return options;
}

std::vector<std::string> ServerJournalLines(ProjectServer& server) {
  if (server.is_sharded()) return server.sharded_engine()->JournalLines();
  std::vector<std::string> lines;
  const events::EventJournal& journal = server.engine().journal();
  for (size_t i = 0; i < journal.Size(); ++i) {
    const events::JournalRecord record = journal.At(i);
    lines.push_back("[" +
                    std::string(events::EventOriginName(record.event.origin)) +
                    "] " + events::FormatEvent(record.event));
  }
  return lines;
}

/// One logged mutation with per-call distinct content (dirties the
/// object table, advances the simulated clock).
void MutateOnce(ProjectServer& server, int i) {
  server.CheckIn("CPU", "HDL_model", "module cpu; // rev " + std::to_string(i),
                 "alice");
  server.AdvanceClock(1);
}

std::string DbText(ProjectServer& server) {
  return metadb::SaveDatabaseString(server.database());
}

/// Sorted "ops" segment file paths in `dir`.
std::vector<std::filesystem::path> OpsSegments(const std::string& dir) {
  std::vector<std::filesystem::path> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ops-", 0) == 0 &&
        name.size() > 4 + 4 &&
        name.substr(name.size() - 4) == ".wal") {
      segments.push_back(entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

// --- Delta persistence ------------------------------------------------------

TEST(DeltaCheckpoint, DeltaTextRoundTripsOntoBase) {
  TempDir dir("delta-roundtrip");
  auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  MutateOnce(*server, 0);
  server->WalCheckpoint(CheckpointMode::kFull);  // Clears the dirty set.
  const std::string base_text = DbText(*server);

  MutateOnce(*server, 1);
  server->CheckIn("CPU", "schematic", "cpu gates", "bob");
  server->Drain();
  const metadb::DirtySet dirty = server->database().CutDirtySet();
  EXPECT_FALSE(dirty.empty());
  const std::string delta =
      metadb::SaveDatabaseDeltaString(server->database(), dirty);
  // The delta carries the dirty slots, not the whole database.
  EXPECT_LT(delta.size(), DbText(*server).size());

  metadb::MetaDatabase restored = metadb::LoadDatabaseString(base_text);
  metadb::ApplyDatabaseDeltaString(delta, restored);
  EXPECT_EQ(metadb::SaveDatabaseString(restored), DbText(*server));
}

TEST(DeltaCheckpoint, WrongBaseIsRejected) {
  TempDir dir("delta-wrong-base");
  auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  MutateOnce(*server, 0);
  MutateOnce(*server, 1);
  server->WalCheckpoint(CheckpointMode::kFull);
  MutateOnce(*server, 2);
  server->Drain();
  const metadb::DirtySet dirty = server->database().CutDirtySet();
  const std::string delta =
      metadb::SaveDatabaseDeltaString(server->database(), dirty);
  // Applying onto an empty database: the post-application slot totals
  // cannot match, so the load is refused instead of silently merging.
  metadb::MetaDatabase empty;
  EXPECT_THROW(metadb::ApplyDatabaseDeltaString(delta, empty),
               WireFormatError);
}

// --- Chain recovery ---------------------------------------------------------

TEST(DeltaCheckpoint, ChainRecoversByteEqualState) {
  TempDir dir("delta-chain");
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    MutateOnce(*server, 0);
    const uint64_t full_id = server->WalCheckpoint(CheckpointMode::kFull);
    EXPECT_EQ(full_id, 1u);
    MutateOnce(*server, 1);
    EXPECT_EQ(server->WalCheckpoint(CheckpointMode::kDelta), 2u);
    MutateOnce(*server, 2);
    server->CheckIn("ALU", "HDL_model", "module alu;", "bob");
    EXPECT_EQ(server->WalCheckpoint(CheckpointMode::kDelta), 3u);
    MutateOnce(*server, 3);  // Ops tail past the chain tip.

    const WalStatus status = server->GetWalStatus();
    EXPECT_EQ(status.last_checkpoint_id, 3u);
    EXPECT_TRUE(status.last_checkpoint_delta);
    EXPECT_EQ(status.chain_base_id, 1u);
    EXPECT_EQ(status.chain_length, 3u);
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  const WalStatus status = recovered->GetWalStatus();
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.checkpoint_id, 3u);   // Chain tip.
  EXPECT_EQ(status.chain_base_id, 1u);   // Chain survives the restart.
  EXPECT_EQ(status.chain_length, 3u);
  EXPECT_GT(status.replayed_ops, 0u);    // The tail past checkpoint 3.
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

TEST(DeltaCheckpoint, FirstDeltaRequestUpgradesToFull) {
  TempDir dir("delta-first");
  auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  MutateOnce(*server, 0);
  EXPECT_EQ(server->WalCheckpoint(CheckpointMode::kDelta), 1u);
  const WalStatus status = server->GetWalStatus();
  EXPECT_FALSE(status.last_checkpoint_delta);  // No base existed.
  EXPECT_EQ(status.chain_base_id, 1u);
  EXPECT_EQ(status.chain_length, 1u);
}

TEST(DeltaCheckpoint, ChainLimitForcesPeriodicFull) {
  TempDir dir("delta-chain-limit");
  ServerOptions options = DurableOptions(dir.str());
  options.checkpoint_chain_limit = 2;
  auto server = testutil::MakeEdtcServer(options);
  MutateOnce(*server, 0);
  server->WalCheckpoint(CheckpointMode::kFull);   // id 1, chain length 1.
  MutateOnce(*server, 1);
  server->WalCheckpoint(CheckpointMode::kDelta);  // id 2, chain length 2.
  EXPECT_TRUE(server->GetWalStatus().last_checkpoint_delta);
  MutateOnce(*server, 2);
  server->WalCheckpoint(CheckpointMode::kDelta);  // Limit hit: forced full.
  const WalStatus status = server->GetWalStatus();
  EXPECT_FALSE(status.last_checkpoint_delta);
  EXPECT_EQ(status.chain_base_id, 3u);  // Chain re-anchored.
  EXPECT_EQ(status.chain_length, 1u);
}

TEST(DeltaCheckpoint, AutoCheckpointsChainAndRecover) {
  TempDir dir("delta-auto");
  ServerOptions options = DurableOptions(dir.str());
  options.checkpoint_every_ops = 5;  // auto_checkpoint_mode defaults to delta.
  std::vector<std::string> lines;
  std::string db_text;
  uint64_t taken = 0;
  {
    auto server = testutil::MakeEdtcServer(options);
    // 20 ops at threshold 5: a handful of checkpoints, comfortably
    // inside the chain limit so the tip is still a delta.
    for (int i = 0; i < 10; ++i) MutateOnce(*server, i);
    const WalStatus status = server->GetWalStatus();
    taken = status.checkpoints_taken;
    EXPECT_GE(taken, 2u);  // First full, later ones delta.
    EXPECT_TRUE(status.last_checkpoint_delta);
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_TRUE(recovered->GetWalStatus().recovered);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

// --- Background checkpointing -----------------------------------------------

TEST(BackgroundCheckpoint, SynchronousCallsCommitThroughWorker) {
  TempDir dir("bg-sync");
  ServerOptions options = DurableOptions(dir.str());
  options.background_checkpoints = true;
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(options);
    MutateOnce(*server, 0);
    EXPECT_EQ(server->WalCheckpoint(CheckpointMode::kFull), 1u);
    MutateOnce(*server, 1);
    EXPECT_EQ(server->WalCheckpoint(CheckpointMode::kDelta), 2u);
    MutateOnce(*server, 2);
    const WalStatus status = server->GetWalStatus();
    EXPECT_TRUE(status.background);
    EXPECT_EQ(status.last_checkpoint_id, 2u);
    EXPECT_TRUE(status.last_checkpoint_delta);
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_TRUE(recovered->GetWalStatus().recovered);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

TEST(BackgroundCheckpoint, AutoCheckpointsCommitEventually) {
  TempDir dir("bg-auto");
  ServerOptions options = DurableOptions(dir.str());
  options.background_checkpoints = true;
  options.checkpoint_every_ops = 4;
  auto server = testutil::MakeEdtcServer(options);
  for (int i = 0; i < 20; ++i) MutateOnce(*server, i);
  // Auto-checkpoints are fire-and-forget; give the worker a moment.
  for (int spin = 0; spin < 200; ++spin) {
    if (server->GetWalStatus().checkpoints_taken > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(server->GetWalStatus().checkpoints_taken, 0u);
  EXPECT_EQ(server->GetHealth().checkpoint_failures, 0u);
}

// --- Satellite 1: the checkpoint-failure storm ------------------------------

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

TEST(CheckpointBackoff, FailedAutoCheckpointsDoNotStorm) {
  TempDir dir("ckpt-storm");
  ServerOptions options = DurableOptions(dir.str());
  options.checkpoint_every_ops = 4;
  // Deterministic schedule: one retry step at 100ms, then re-arm at the
  // 200ms cap forever.
  options.wal_retry = common::BackoffPolicy{
      1, std::chrono::milliseconds(100), std::chrono::milliseconds(200),
      2.0, 0.0, 7};
  auto server = testutil::MakeEdtcServer(options);
  common::Failpoints::Instance().Configure("checkpoint.write", "error");

  // A rapid burst far past the threshold. The storm bug reset the op
  // counter to the threshold on failure, so every one of these ops
  // re-attempted (and re-failed) a checkpoint: ~37 failures. With the
  // backoff gate a burst this fast fits in one or two intervals.
  for (int i = 0; i < 40; ++i) MutateOnce(*server, i);
  const ServerHealth stormy = server->GetHealth();
  EXPECT_GE(stormy.checkpoint_failures, 1u);
  EXPECT_LE(stormy.checkpoint_failures, 6u);
  EXPECT_GE(stormy.checkpoint_retries, 1u);
  EXPECT_EQ(server->GetWalStatus().checkpoints_taken, 0u);
  EXPECT_FALSE(server->degraded());  // Checkpoint failures never degrade.

  // Fault clears; once the armed deadline passes, the very next op
  // retries and commits (the op counter was never reset).
  common::Failpoints::Instance().ClearAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  MutateOnce(*server, 40);
  const WalStatus status = server->GetWalStatus();
  EXPECT_GE(status.checkpoints_taken, 1u);
  EXPECT_GT(status.last_checkpoint_id, 0u);
  EXPECT_EQ(server->GetHealth().checkpoint_failures,
            stormy.checkpoint_failures);
}

TEST(CheckpointBackoff, FailedDeltaMarksAreNotLost) {
  TempDir dir("ckpt-dirty-merge");
  auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  MutateOnce(*server, 0);
  server->WalCheckpoint(CheckpointMode::kFull);
  MutateOnce(*server, 1);  // Dirties slots the next delta must carry.
  std::vector<std::string> lines = ServerJournalLines(*server);

  common::Failpoints::Instance().Configure("checkpoint.write", "error,count=1");
  EXPECT_THROW(server->WalCheckpoint(CheckpointMode::kDelta), Error);
  common::Failpoints::Instance().ClearAll();

  // The failed cut consumed the dirty set; the retry must merge it back
  // or the committed delta would silently miss those slots.
  EXPECT_EQ(server->WalCheckpoint(CheckpointMode::kDelta), 2u);
  const std::string db_text = DbText(*server);
  server.reset();
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_EQ(recovered->GetWalStatus().checkpoint_id, 2u);
  EXPECT_EQ(DbText(*recovered), db_text);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
}

#endif  // DAMOCLES_FAILPOINTS_ENABLED

// --- Segment retention ------------------------------------------------------

ServerOptions RetentionOptions(const std::string& wal_dir) {
  ServerOptions options = DurableOptions(wal_dir);
  options.wal_segment_bytes = 256;  // Roll segments constantly.
  options.wal_retain_segments = 0;
  return options;
}

TEST(SegmentRetention, PrunesBelowCommittedFloorAndRecovers) {
  TempDir dir("retention-prune");
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(RetentionOptions(dir.str()));
    for (int i = 0; i < 30; ++i) MutateOnce(*server, i);
    EXPECT_GT(OpsSegments(dir.str()).size(), 3u);
    server->WalCheckpoint(CheckpointMode::kFull);
    const WalStatus status = server->GetWalStatus();
    EXPECT_GT(status.segments_pruned, 0u);
    EXPECT_GT(status.bytes_pruned, 0u);
    EXPECT_EQ(status.failed_removals, 0u);
    // Everything below the floor went; the writer's segment stays.
    EXPECT_LE(OpsSegments(dir.str()).size(), 2u);
    MutateOnce(*server, 30);  // Tail past the checkpoint.
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_TRUE(recovered->GetWalStatus().recovered);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

TEST(SegmentRetention, SupersededCheckpointChainsArePruned) {
  TempDir dir("retention-chains");
  auto server = testutil::MakeEdtcServer(RetentionOptions(dir.str()));
  MutateOnce(*server, 0);
  server->WalCheckpoint(CheckpointMode::kFull);  // id 1.
  MutateOnce(*server, 1);
  server->WalCheckpoint(CheckpointMode::kDelta);  // id 2 chains onto 1.
  MutateOnce(*server, 2);
  server->WalCheckpoint(CheckpointMode::kFull);  // id 3 re-anchors.
  const WalStatus status = server->GetWalStatus();
  EXPECT_GT(status.checkpoints_pruned, 0u);
  // The superseded chain (manifests 1 and 2) is gone; the live full
  // checkpoint remains.
  EXPECT_FALSE(std::filesystem::exists(dir.path() /
                                       metadb::ManifestFileName(1)));
  EXPECT_FALSE(std::filesystem::exists(dir.path() /
                                       metadb::ManifestFileName(2)));
  EXPECT_TRUE(std::filesystem::exists(dir.path() /
                                      metadb::ManifestFileName(3)));
}

TEST(SegmentRetention, DefaultNeverPrunes) {
  TempDir dir("retention-off");
  ServerOptions options = DurableOptions(dir.str());
  options.wal_segment_bytes = 256;  // retain_segments stays -1.
  auto server = testutil::MakeEdtcServer(options);
  for (int i = 0; i < 20; ++i) MutateOnce(*server, i);
  const size_t segments_before = OpsSegments(dir.str()).size();
  EXPECT_GT(segments_before, 2u);
  server->WalCheckpoint(CheckpointMode::kFull);
  const WalStatus status = server->GetWalStatus();
  EXPECT_EQ(status.segments_pruned, 0u);
  EXPECT_EQ(status.checkpoints_pruned, 0u);
  EXPECT_EQ(OpsSegments(dir.str()).size(), segments_before);
}

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

TEST(SegmentRetention, InterruptedPruneWarnsAndStillRecovers) {
  TempDir dir("retention-interrupted");
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(RetentionOptions(dir.str()));
    for (int i = 0; i < 30; ++i) MutateOnce(*server, i);
    common::Failpoints::Instance().Configure("wal.prune", "error,count=1");
    // The checkpoint itself commits; only the retention pass trips.
    const uint64_t id = server->WalCheckpoint(CheckpointMode::kFull);
    common::Failpoints::Instance().ClearAll();
    EXPECT_GT(id, 0u);
    const ServerHealth health = server->GetHealth();
    EXPECT_TRUE(health.prune_behind);
    EXPECT_GE(health.failed_removals, 1u);
    EXPECT_FALSE(server->degraded());  // A warning, not an outage.
    EXPECT_GE(server->GetWalStatus().failed_removals, 1u);
    MutateOnce(*server, 30);
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_TRUE(recovered->GetWalStatus().recovered);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

#endif  // DAMOCLES_FAILPOINTS_ENABLED

// --- Satellite 4: recovery negatives ----------------------------------------

TEST(RecoveryNegatives, LeftoverManifestTmpIsSwept) {
  TempDir dir("gc-tmp");
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    MutateOnce(*server, 0);
    server->WalCheckpoint(CheckpointMode::kFull);
    MutateOnce(*server, 1);
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  // A crash between manifest write and rename leaves the temp file.
  const std::filesystem::path tmp =
      dir.path() / (metadb::ManifestFileName(99) + ".tmp");
  std::ofstream(tmp) << "torn manifest garbage\n";
  ASSERT_TRUE(std::filesystem::exists(tmp));

  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_FALSE(std::filesystem::exists(tmp));
  EXPECT_GT(recovered->GetWalStatus().gc_artifacts_removed, 0u);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

TEST(RecoveryNegatives, StaleCheckpointFileWithoutManifestIsSwept) {
  TempDir dir("gc-orphan");
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    MutateOnce(*server, 0);
    server->WalCheckpoint(CheckpointMode::kFull);
    db_text = DbText(*server);
  }
  // Checkpoint files whose manifest never landed (or was deleted).
  const std::filesystem::path orphan_db =
      dir.path() / metadb::CheckpointFileName(42, "db");
  const std::filesystem::path orphan_delta =
      dir.path() / metadb::CheckpointFileName(42, "dbd");
  std::ofstream(orphan_db) << "stale checkpoint payload\n";
  std::ofstream(orphan_delta) << "stale delta payload\n";

  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  EXPECT_FALSE(std::filesystem::exists(orphan_db));
  EXPECT_FALSE(std::filesystem::exists(orphan_delta));
  EXPECT_GT(recovered->GetWalStatus().gc_artifacts_removed, 0u);
  EXPECT_TRUE(recovered->GetWalStatus().recovered);
  EXPECT_EQ(DbText(*recovered), db_text);
}

TEST(RecoveryNegatives, PartiallyPrunedSegmentDirectoryRecovers) {
  TempDir dir("gc-partial-prune");
  std::vector<std::string> lines;
  std::string db_text;
  {
    ServerOptions options = DurableOptions(dir.str());
    options.wal_segment_bytes = 256;  // Many small segments, no pruning.
    auto server = testutil::MakeEdtcServer(options);
    for (int i = 0; i < 30; ++i) MutateOnce(*server, i);
    server->WalCheckpoint(CheckpointMode::kFull);  // Floor covers them all.
    MutateOnce(*server, 30);  // Tail in the newest segment.
    lines = ServerJournalLines(*server);
    db_text = DbText(*server);
  }
  // A prune killed mid-loop removes an ascending prefix; simulate the
  // worst leftover — a gap (removal succeeded for segment 2 but not 1),
  // stranding segment 1 below the discontinuity.
  std::vector<std::filesystem::path> segments = OpsSegments(dir.str());
  ASSERT_GE(segments.size(), 3u);
  std::filesystem::remove(segments[1]);

  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  // The stranded below-gap prefix was garbage-collected...
  EXPECT_FALSE(std::filesystem::exists(segments[0]));
  EXPECT_GT(recovered->GetWalStatus().gc_artifacts_removed, 0u);
  // ...and recovery never needed ops below the committed floor.
  EXPECT_TRUE(recovered->GetWalStatus().recovered);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(DbText(*recovered), db_text);
}

// --- Wire surface -----------------------------------------------------------

TEST(WireCheckpoint, DeltaCommandAndStatusChain) {
  TempDir dir("wire-delta");
  auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  WireSession session(*server, "alice");
  EXPECT_EQ(session.HandleLine("checkin CPU HDL_model \"module cpu;\""),
            "ok CPU,HDL_model,1\n");
  EXPECT_EQ(session.HandleLine("wal-checkpoint"), "ok checkpoint 1\n");
  EXPECT_EQ(session.HandleLine("checkin CPU HDL_model \"module cpu; //2\""),
            "ok CPU,HDL_model,2\n");
  EXPECT_EQ(session.HandleLine("wal-checkpoint delta"),
            "ok checkpoint 2 delta base 1\n");
  EXPECT_EQ(session.HandleLine("wal-checkpoint bogus"),
            "error: usage: wal-checkpoint [full|delta]\n");
  const std::string status = session.HandleLine("wal-status");
  EXPECT_NE(status.find("chain tip 2 (delta), base 1, length 2"),
            std::string::npos);
  EXPECT_NE(status.find("checkpoints inline, retention off"),
            std::string::npos);
}

TEST(WireCheckpoint, StatusShowsRetentionCounters) {
  TempDir dir("wire-retention");
  auto server = testutil::MakeEdtcServer(RetentionOptions(dir.str()));
  WireSession session(*server, "alice");
  for (int i = 0; i < 30; ++i) MutateOnce(*server, i);
  EXPECT_EQ(session.HandleLine("wal-checkpoint").rfind("ok checkpoint", 0),
            0u);
  const std::string status = session.HandleLine("wal-status");
  EXPECT_NE(status.find("retention keep 0"), std::string::npos);
  EXPECT_NE(status.find("segment(s)"), std::string::npos);
  EXPECT_EQ(status.find("pruning is behind"), std::string::npos);
}

}  // namespace
}  // namespace damocles
