// Shared helpers for the DAMOCLES/BluePrint test suite.
#pragma once

#include <memory>
#include <string>

#include "engine/project_server.hpp"
#include "workload/edtc.hpp"

namespace damocles::testutil {

/// A project server with the EDTC blueprint installed.
inline std::unique_ptr<engine::ProjectServer> MakeEdtcServer(
    engine::ServerOptions options = {}) {
  auto server = std::make_unique<engine::ProjectServer>("edtc", options);
  server->InitializeBlueprint(workload::EdtcBlueprintText());
  return server;
}

/// Property value or "" when absent.
inline std::string Prop(const engine::ProjectServer& server,
                        const metadb::Oid& oid, const std::string& name) {
  const auto id = server.database().FindObject(oid);
  if (!id.has_value()) return "<no such oid>";
  const std::string* value = server.database().GetProperty(*id, name);
  return value == nullptr ? std::string() : *value;
}

/// Property of the latest version of (block, view), or "".
inline std::string LatestProp(const engine::ProjectServer& server,
                              const std::string& block,
                              const std::string& view,
                              const std::string& name) {
  const auto id = server.database().FindLatest(block, view);
  if (!id.has_value()) return "<no version>";
  const std::string* value = server.database().GetProperty(*id, name);
  return value == nullptr ? std::string() : *value;
}

}  // namespace damocles::testutil
