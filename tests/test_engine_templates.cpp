// Template-rule application: paper Figs. 2 and 3.
#include <gtest/gtest.h>

#include "blueprint/parser.hpp"
#include "common/clock.hpp"
#include "engine/run_time_engine.hpp"

namespace damocles::engine {
namespace {

using metadb::CarryPolicy;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::Oid;
using metadb::OidId;

class TemplateTest : public ::testing::Test {
 protected:
  TemplateTest() : engine_(db_, clock_) {}

  void Load(const std::string& source) {
    engine_.LoadBlueprint(blueprint::ParseBlueprint(source));
  }

  std::string Prop(OidId id, const std::string& name) {
    const std::string* value = db_.GetProperty(id, name);
    return value == nullptr ? std::string("<absent>") : *value;
  }

  MetaDatabase db_;
  SimClock clock_;
  RunTimeEngine engine_;
};

TEST_F(TemplateTest, Figure2PropertyCopyAcrossVersions) {
  // Paper Fig. 2: "property DRC default bad copy" — v6 copies the DRC
  // value of v5 instead of re-defaulting.
  Load(R"(blueprint f2
          view GDSII
            property DRC default bad copy
          endview
          endblueprint)");
  const OidId v5 = engine_.OnCreateObject("alu", "GDSII", "alice");
  EXPECT_EQ(Prop(v5, "DRC"), "bad");  // First version: default value.
  db_.SetProperty(v5, "DRC", "ok");

  const OidId v6 = engine_.OnCreateObject("alu", "GDSII", "alice");
  EXPECT_EQ(Prop(v6, "DRC"), "ok");   // Copied from the previous version.
  EXPECT_EQ(Prop(v5, "DRC"), "ok");   // Copy leaves the source in place.
}

TEST_F(TemplateTest, PropertyMoveRemovesFromPreviousVersion) {
  Load(R"(blueprint t
          view v
            property tag default none move
          endview
          endblueprint)");
  const OidId v1 = engine_.OnCreateObject("b", "v", "u");
  db_.SetProperty(v1, "tag", "golden");
  const OidId v2 = engine_.OnCreateObject("b", "v", "u");
  EXPECT_EQ(Prop(v2, "tag"), "golden");
  EXPECT_EQ(Prop(v1, "tag"), "<absent>");
}

TEST_F(TemplateTest, PropertyWithoutCarryRedefaults) {
  Load(R"(blueprint t
          view v
            property fresh default empty
          endview
          endblueprint)");
  const OidId v1 = engine_.OnCreateObject("b", "v", "u");
  db_.SetProperty(v1, "fresh", "modified");
  const OidId v2 = engine_.OnCreateObject("b", "v", "u");
  EXPECT_EQ(Prop(v2, "fresh"), "empty");
}

TEST_F(TemplateTest, DefaultViewPropertiesApplyToEveryView) {
  Load(R"(blueprint t
          view default
            property uptodate default true
          endview
          view v
            property own default x
          endview
          endblueprint)");
  const OidId tracked = engine_.OnCreateObject("b", "v", "u");
  EXPECT_EQ(Prop(tracked, "uptodate"), "true");
  EXPECT_EQ(Prop(tracked, "own"), "x");
  // A view without its own template still gets default-view properties.
  const OidId other = engine_.OnCreateObject("b", "unlisted", "u");
  EXPECT_EQ(Prop(other, "uptodate"), "true");
  EXPECT_EQ(Prop(other, "own"), "<absent>");
}

TEST_F(TemplateTest, SpecificViewOverridesDefaultViewProperty) {
  Load(R"(blueprint t
          view default
            property uptodate default true
          endview
          view pessimistic
            property uptodate default false
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("b", "pessimistic", "u");
  EXPECT_EQ(Prop(id, "uptodate"), "false");
}

TEST_F(TemplateTest, Figure3MoveLinkShiftsToNewVersion) {
  // Paper Fig. 3: the derive link NetList -> GDSII.v5 carries MOVE; when
  // GDSII.v6 is created the link is shifted to point at v6.
  Load(R"(blueprint f3
          view GDSII
            link_from NetList propagates OutOfDate type derive_from move
          endview
          view NetList
          endview
          endblueprint)");
  const OidId netlist = engine_.OnCreateObject("alu", "NetList", "u");
  const OidId v5 = engine_.OnCreateObject("alu", "GDSII", "u");
  const auto link = engine_.OnCreateLink(LinkKind::kDerive, netlist, v5);
  EXPECT_EQ(db_.GetLink(link).carry, CarryPolicy::kMove);
  EXPECT_EQ(db_.GetLink(link).type, "derive_from");

  const OidId v6 = engine_.OnCreateObject("alu", "GDSII", "u");
  EXPECT_EQ(db_.GetLink(link).to, v6);
  EXPECT_TRUE(db_.InLinks(v5).empty());
  EXPECT_EQ(db_.InLinks(v6).size(), 1u);
  EXPECT_EQ(engine_.stats().links_carried, 1u);
}

TEST_F(TemplateTest, MoveLinkShiftsSourceEndpointToo) {
  // The use link <cpu.SCHEMA.x> -> <reg.SCHEMA.y> must follow new
  // versions of either endpoint (paper §3.4's REG.schematic.2 example).
  Load(R"(blueprint t
          view SCHEMA
            use_link move propagates outofdate
          endview
          endblueprint)");
  const OidId cpu1 = engine_.OnCreateObject("cpu", "SCHEMA", "u");
  const OidId reg1 = engine_.OnCreateObject("reg", "SCHEMA", "u");
  const auto link = engine_.OnCreateLink(LinkKind::kUse, cpu1, reg1);

  const OidId reg2 = engine_.OnCreateObject("reg", "SCHEMA", "u");
  EXPECT_EQ(db_.GetLink(link).from, cpu1);
  EXPECT_EQ(db_.GetLink(link).to, reg2);

  const OidId cpu2 = engine_.OnCreateObject("cpu", "SCHEMA", "u");
  EXPECT_EQ(db_.GetLink(link).from, cpu2);
  EXPECT_EQ(db_.GetLink(link).to, reg2);
}

TEST_F(TemplateTest, CopyLinkDuplicatesToNewVersion) {
  Load(R"(blueprint t
          view sink
            link_from source propagates ev type derived copy
          endview
          view source
          endview
          endblueprint)");
  const OidId src = engine_.OnCreateObject("b", "source", "u");
  const OidId v1 = engine_.OnCreateObject("b", "sink", "u");
  engine_.OnCreateLink(LinkKind::kDerive, src, v1);

  const OidId v2 = engine_.OnCreateObject("b", "sink", "u");
  // Old link still attached to v1, duplicate attached to v2.
  EXPECT_EQ(db_.InLinks(v1).size(), 1u);
  EXPECT_EQ(db_.InLinks(v2).size(), 1u);
  EXPECT_EQ(db_.OutLinks(src).size(), 2u);
}

TEST_F(TemplateTest, PlainLinkStaysOnOldVersion) {
  Load(R"(blueprint t
          view sink
            link_from source propagates ev type derived
          endview
          view source
          endview
          endblueprint)");
  const OidId src = engine_.OnCreateObject("b", "source", "u");
  const OidId v1 = engine_.OnCreateObject("b", "sink", "u");
  engine_.OnCreateLink(LinkKind::kDerive, src, v1);
  const OidId v2 = engine_.OnCreateObject("b", "sink", "u");
  EXPECT_EQ(db_.InLinks(v1).size(), 1u);
  EXPECT_TRUE(db_.InLinks(v2).empty());
}

TEST_F(TemplateTest, OnCreateLinkAttachesTemplateAnnotations) {
  Load(R"(blueprint t
          view netlist
            link_from schematic propagates nl_sim, outofdate type derived
          endview
          view schematic
          endview
          endblueprint)");
  const OidId sch = engine_.OnCreateObject("cpu", "schematic", "u");
  const OidId net = engine_.OnCreateObject("cpu", "netlist", "u");
  const auto link_id = engine_.OnCreateLink(LinkKind::kDerive, sch, net);
  const metadb::Link& link = db_.GetLink(link_id);
  EXPECT_TRUE(link.Propagates("nl_sim"));
  EXPECT_TRUE(link.Propagates("outofdate"));
  EXPECT_FALSE(link.Propagates("ckin"));
  EXPECT_EQ(link.type, "derived");
  // PROPAGATE / TYPE are mirrored as queryable link properties (paper §2).
  EXPECT_EQ(link.properties.at("PROPAGATE"), "nl_sim,outofdate");
  EXPECT_EQ(link.properties.at("TYPE"), "derived");
  EXPECT_EQ(engine_.stats().links_templated, 1u);
}

TEST_F(TemplateTest, UntemplatedLinkPropagatesNothing) {
  Load(R"(blueprint t
          view a
          endview
          view b
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  const auto link = engine_.OnCreateLink(LinkKind::kDerive, a, b);
  EXPECT_TRUE(db_.GetLink(link).propagates.empty());
  EXPECT_EQ(engine_.stats().links_untemplated, 1u);
}

TEST_F(TemplateTest, ContinuousAssignmentInitializedAtCreation) {
  Load(R"(blueprint t
          view v
            property r default bad
            let state = ($r == good)
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("b", "v", "u");
  EXPECT_EQ(Prop(id, "state"), "false");
}

TEST_F(TemplateTest, CreationWithoutBlueprintStillWorks) {
  // The tracking system can run blueprint-less (bare meta-data mode).
  const OidId id = engine_.OnCreateObject("b", "v", "u");
  EXPECT_TRUE(db_.GetObject(id).properties.empty());
}

}  // namespace
}  // namespace damocles::engine
