#include <gtest/gtest.h>

#include "common/error.hpp"
#include "engine/designer_workspace.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"
#include "workload/trace_script.hpp"

namespace damocles {
namespace {

using engine::DesignerWorkspace;
using metadb::Oid;
using testutil::LatestProp;
using testutil::MakeEdtcServer;

// --- Designer sandboxes and promotion ---------------------------------------

TEST(DesignerWorkspace, DraftsAreInvisibleToTracking) {
  auto server = MakeEdtcServer();
  DesignerWorkspace alice(*server, "alice");

  for (int i = 0; i < 100; ++i) {
    alice.SaveDraft("CPU", "HDL_model", "draft " + std::to_string(i));
  }
  EXPECT_EQ(alice.DraftVersion("CPU", "HDL_model"), 100);
  // A hundred saves: zero tracked objects, zero events.
  EXPECT_EQ(server->database().Stats().live_objects, 0u);
  EXPECT_EQ(server->engine().stats().events_processed, 0u);
}

TEST(DesignerWorkspace, PromotionCreatesTrackedVersion) {
  auto server = MakeEdtcServer();
  DesignerWorkspace alice(*server, "alice");
  alice.SaveDraft("CPU", "HDL_model", "draft 1");
  alice.SaveDraft("CPU", "HDL_model", "the good one");

  const Oid promoted = alice.Promote("CPU", "HDL_model");
  EXPECT_EQ(promoted, (Oid{"CPU", "HDL_model", 1}));
  EXPECT_EQ(alice.promotions(), 1u);

  // The project workspace holds the latest draft's content; the
  // meta-object carries the templates and the ckin ran.
  EXPECT_EQ(server->workspace().Read(promoted)->content, "the good one");
  EXPECT_EQ(LatestProp(*server, "CPU", "HDL_model", "uptodate"), "true");
  EXPECT_EQ(server->engine().stats().events_processed, 1u);
  const auto id = server->database().FindObject(promoted);
  EXPECT_EQ(server->database().GetObject(*id).created_by, "alice");
}

TEST(DesignerWorkspace, PromoteWithoutDraftThrows) {
  auto server = MakeEdtcServer();
  DesignerWorkspace alice(*server, "alice");
  EXPECT_THROW(alice.Promote("CPU", "HDL_model"), NotFoundError);
}

TEST(DesignerWorkspace, PullBringsProjectDataIntoSandbox) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "HDL_model", "project content", "bob");

  DesignerWorkspace alice(*server, "alice");
  EXPECT_THROW(alice.Pull("CPU", "netlist"), NotFoundError);
  alice.Pull("CPU", "HDL_model");
  EXPECT_EQ(alice.LatestDraft("CPU", "HDL_model"), "project content");
  // Pulling is also untracked.
  EXPECT_EQ(server->database().Stats().live_objects, 1u);
}

TEST(DesignerWorkspace, SandboxesAreIndependent) {
  auto server = MakeEdtcServer();
  DesignerWorkspace alice(*server, "alice");
  DesignerWorkspace bob(*server, "bob");
  alice.SaveDraft("CPU", "HDL_model", "alice's take");
  bob.SaveDraft("CPU", "HDL_model", "bob's take");
  EXPECT_EQ(alice.LatestDraft("CPU", "HDL_model"), "alice's take");
  EXPECT_EQ(bob.LatestDraft("CPU", "HDL_model"), "bob's take");
  // Both promote; the project interleaves them as versions 1 and 2.
  alice.Promote("CPU", "HDL_model");
  bob.Promote("CPU", "HDL_model");
  EXPECT_EQ(server->workspace().LatestVersion("CPU", "HDL_model"), 2);
}

// --- Trace scripts ------------------------------------------------------------

events::EventMessage MakeEvent(const std::string& name, const Oid& target,
                               const std::string& arg,
                               const std::string& user, int64_t timestamp) {
  events::EventMessage event;
  event.name = name;
  event.direction = events::Direction::kUp;
  event.target = target;
  event.arg = arg;
  event.user = user;
  event.timestamp = timestamp;
  return event;
}

TEST(TraceScript, SaveLoadRoundTrip) {
  std::vector<events::EventMessage> trace = {
      MakeEvent("ckin", Oid{"CPU", "HDL_model", 1}, "", "alice", 100),
      MakeEvent("hdl_sim", Oid{"CPU", "HDL_model", 1}, "4 errors", "bob",
                250),
  };
  const std::string script = workload::SaveTraceScript(trace);
  const auto loaded = workload::LoadTraceScript(script);

  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "ckin");
  EXPECT_EQ(loaded[0].user, "alice");
  EXPECT_EQ(loaded[0].timestamp, 100);
  EXPECT_EQ(loaded[1].arg, "4 errors");
  EXPECT_EQ(loaded[1].user, "bob");
  EXPECT_EQ(loaded[1].timestamp, 250);

  // Stable under a second round trip.
  EXPECT_EQ(workload::SaveTraceScript(loaded), script);
}

TEST(TraceScript, IgnoresCommentsAndBlankLines) {
  const auto trace = workload::LoadTraceScript(
      "# a header comment\n"
      "\n"
      "postEvent drc up alu,layout,1 \"good\"\n"
      "# trailing note\n");
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].name, "drc");
  EXPECT_TRUE(trace[0].user.empty());
}

TEST(TraceScript, RejectsMalformedLines) {
  EXPECT_THROW(workload::LoadTraceScript("postEvent oops\n"),
               WireFormatError);
  EXPECT_THROW(workload::LoadTraceScript("#@ user=a t=xyz\npostEvent a up "
                                         "b,c,1\n"),
               WireFormatError);
}

TEST(TraceScript, JournalReplayReproducesFinalState) {
  // Record a session, save its external trace, replay it into a fresh
  // server: queries agree.
  auto record_server = MakeEdtcServer();
  record_server->CheckIn("CPU", "HDL_model", "m", "alice");
  record_server->AdvanceClock(600);
  record_server->SubmitWireLine(
      "postEvent hdl_sim up CPU,HDL_model,1 \"good\"", "alice");
  record_server->AdvanceClock(600);
  record_server->CheckIn("CPU", "schematic", "s", "bob");
  record_server->RegisterLink(metadb::LinkKind::kDerive,
                              Oid{"CPU", "HDL_model", 1},
                              Oid{"CPU", "schematic", 1});
  record_server->AdvanceClock(600);
  record_server->CheckIn("CPU", "HDL_model", "m2", "alice");

  const std::string script = workload::SaveTraceScript(
      record_server->engine().journal().ExternalTrace());

  // The replay server gets the same structure (creation and links are
  // workspace operations, not events), then the event traffic.
  auto replay_server = MakeEdtcServer();
  // creation itself is replayed through check-ins with matching content.
  replay_server->CheckIn("CPU", "HDL_model", "m", "alice");
  replay_server->CheckIn("CPU", "schematic", "s", "bob");
  replay_server->RegisterLink(metadb::LinkKind::kDerive,
                              Oid{"CPU", "HDL_model", 1},
                              Oid{"CPU", "schematic", 1});
  replay_server->CheckIn("CPU", "HDL_model", "m2", "alice");

  // Replaying the recorded result events brings properties in line.
  const auto trace = workload::LoadTraceScript(script);
  size_t result_events = 0;
  for (const auto& event : trace) {
    if (event.name == "hdl_sim") {
      workload::ReplayTrace(*replay_server, {event});
      ++result_events;
    }
  }
  EXPECT_EQ(result_events, 1u);
  EXPECT_EQ(LatestProp(*replay_server, "CPU", "schematic", "uptodate"),
            testutil::LatestProp(*record_server, "CPU", "schematic",
                                 "uptodate"));
  EXPECT_EQ(
      testutil::Prop(*replay_server, Oid{"CPU", "HDL_model", 1},
                     "sim_result"),
      testutil::Prop(*record_server, Oid{"CPU", "HDL_model", 1},
                     "sim_result"));
}

TEST(TraceScript, ReplayAdvancesTheClock) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "HDL_model", "m", "alice");
  const auto trace = workload::LoadTraceScript(
      "#@ user=alice t=5000\n"
      "postEvent hdl_sim up CPU,HDL_model,1 \"good\"\n");
  EXPECT_EQ(workload::ReplayTrace(*server, trace), 1u);
  EXPECT_EQ(server->clock().NowSeconds(), 5000);
}

}  // namespace
}  // namespace damocles
