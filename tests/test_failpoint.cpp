// Unit tests for the failpoint registry (config grammar, trigger
// modifiers, env activation) and the shared jittered-exponential
// backoff helper both retry paths build on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace damocles::common {
namespace {

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().ClearAll(); }
};

TEST_F(FailpointTest, UnconfiguredNeverFires) {
  FailpointHit hit;
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.test.unconfigured", &hit));
  EXPECT_FALSE(Failpoints::Instance().AnyActive());
}

TEST_F(FailpointTest, ErrorActionFires) {
  Failpoints::Instance().Configure("fp.test", "error");
  EXPECT_TRUE(Failpoints::Instance().AnyActive());
  FailpointHit hit;
  ASSERT_TRUE(DAMOCLES_FAILPOINT("fp.test", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kError);
}

TEST_F(FailpointTest, ErrnoActionCarriesNumber) {
  Failpoints::Instance().Configure("fp.test", "errno:ENOSPC");
  FailpointHit hit;
  ASSERT_TRUE(DAMOCLES_FAILPOINT("fp.test", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kErrno);
  EXPECT_EQ(hit.error_number, ENOSPC);

  Failpoints::Instance().Configure("fp.test", "errno:5");
  ASSERT_TRUE(DAMOCLES_FAILPOINT("fp.test", &hit));
  EXPECT_EQ(hit.error_number, 5);
}

TEST_F(FailpointTest, ShortWriteCarriesLength) {
  Failpoints::Instance().Configure("fp.test", "short:16");
  FailpointHit hit;
  ASSERT_TRUE(DAMOCLES_FAILPOINT("fp.test", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kShortWrite);
  EXPECT_EQ(hit.param, 16u);
}

TEST_F(FailpointTest, SkipDefersAndCountDisarms) {
  Failpoints::Instance().Configure("fp.test", "error,skip=2,count=1");
  FailpointHit hit;
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.test", &hit));  // skip 1
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.test", &hit));  // skip 2
  EXPECT_TRUE(DAMOCLES_FAILPOINT("fp.test", &hit));   // the one hit
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.test", &hit));  // disarmed
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.test", &hit));
}

TEST_F(FailpointTest, ProbabilityIsSeededAndReproducible) {
  constexpr int kDraws = 200;
  const auto draw_pattern = [&] {
    Failpoints::Instance().Configure("fp.test", "error,prob=0.5,seed=7");
    std::vector<bool> pattern;
    FailpointHit hit;
    for (int i = 0; i < kDraws; ++i) {
      pattern.push_back(DAMOCLES_FAILPOINT("fp.test", &hit));
    }
    return pattern;
  };
  const std::vector<bool> first = draw_pattern();
  const std::vector<bool> second = draw_pattern();
  EXPECT_EQ(first, second) << "same seed must give the same schedule";
  const int hits = static_cast<int>(std::count(first.begin(), first.end(),
                                               true));
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, kDraws);
}

TEST_F(FailpointTest, DelayStallsWithoutFailing) {
  Failpoints::Instance().Configure("fp.test", "delay:30,count=1");
  FailpointHit hit;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.test", &hit));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST_F(FailpointTest, MalformedConfigThrows) {
  auto& failpoints = Failpoints::Instance();
  EXPECT_THROW(failpoints.Configure("fp.test", ""), Error);
  EXPECT_THROW(failpoints.Configure("fp.test", "bogus"), Error);
  EXPECT_THROW(failpoints.Configure("fp.test", "errno:EWHAT"), Error);
  EXPECT_THROW(failpoints.Configure("fp.test", "short:x"), Error);
  EXPECT_THROW(failpoints.Configure("fp.test", "error,prob=2"), Error);
  EXPECT_THROW(failpoints.Configure("fp.test", "error,frequency=1"), Error);
  EXPECT_THROW(failpoints.Configure("", "error"), Error);
  EXPECT_FALSE(failpoints.AnyActive());
}

TEST_F(FailpointTest, ListReportsCountersAndClearDisarms) {
  auto& failpoints = Failpoints::Instance();
  failpoints.Configure("fp.a", "error,skip=1");
  failpoints.Configure("fp.b", "errno:EIO");
  FailpointHit hit;
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.a", &hit));
  EXPECT_TRUE(DAMOCLES_FAILPOINT("fp.a", &hit));
  EXPECT_TRUE(DAMOCLES_FAILPOINT("fp.b", &hit));

  const std::vector<FailpointStatus> list = failpoints.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "fp.a");
  EXPECT_EQ(list[0].config, "error,skip=1");
  EXPECT_EQ(list[0].evaluations, 2u);
  EXPECT_EQ(list[0].hits, 1u);
  EXPECT_EQ(list[1].name, "fp.b");
  EXPECT_EQ(list[1].hits, 1u);

  failpoints.Clear("fp.a");
  EXPECT_FALSE(DAMOCLES_FAILPOINT("fp.a", &hit));
  EXPECT_TRUE(failpoints.AnyActive());
  failpoints.ClearAll();
  EXPECT_FALSE(failpoints.AnyActive());
  EXPECT_TRUE(failpoints.List().empty());
}

TEST_F(FailpointTest, ListIsSortedByNameRegardlessOfArmingOrder) {
  // Name order is part of the wire contract: "failpoint list" output
  // must be deterministic for scripted clients.
  auto& failpoints = Failpoints::Instance();
  for (const char* name : {"fp.zeta", "fp.alpha", "fp.mid", "fp.beta"}) {
    failpoints.Configure(name, "error");
  }
  const std::vector<FailpointStatus> list = failpoints.List();
  ASSERT_EQ(list.size(), 4u);
  std::vector<std::string> names;
  names.reserve(list.size());
  for (const FailpointStatus& status : list) names.push_back(status.name);
  EXPECT_EQ(names, (std::vector<std::string>{"fp.alpha", "fp.beta", "fp.mid",
                                             "fp.zeta"}));
  // Re-arming one entry must not disturb the order.
  failpoints.Configure("fp.mid", "errno:EIO");
  const std::vector<FailpointStatus> again = failpoints.List();
  ASSERT_EQ(again.size(), 4u);
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].name, names[i]);
  }
}

TEST_F(FailpointTest, AbortActionDies) {
  EXPECT_DEATH(
      {
        Failpoints::Instance().Configure("fp.abort", "abort");
        FailpointHit hit;
        static_cast<void>(DAMOCLES_FAILPOINT("fp.abort", &hit));
      },
      "aborting at 'fp.abort'");
}

// Env activation is parsed once at the registry's first use, so it can
// only be observed in a process where the env var was set before any
// failpoint call — this child probe, re-executed with the variable set.
TEST(FailpointEnvChild, DISABLED_Probe) {
  FailpointHit hit;
  ASSERT_TRUE(DAMOCLES_FAILPOINT("env.fp", &hit));
  EXPECT_EQ(hit.action, FailpointAction::kErrno);
  EXPECT_EQ(hit.error_number, ENOSPC);
  // The malformed sibling entry must have been skipped, not fatal.
  EXPECT_EQ(Failpoints::Instance().List().size(), 1u);
}

TEST(FailpointEnv, ChildProcessArmsFromEnv) {
  // std::system runs the command under /bin/sh, where /proc/self/exe
  // would name the shell — resolve this binary's real path first.
  char exe[4096];
  const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(len, 0);
  exe[len] = '\0';
  const std::string command =
      "DAMOCLES_FAILPOINTS_CONFIG='env.fp=errno:ENOSPC;bad-entry;x=bogus' '" +
      std::string(exe) +
      "' --gtest_also_run_disabled_tests "
      "--gtest_filter=FailpointEnvChild.DISABLED_Probe >/dev/null 2>&1";
  EXPECT_EQ(std::system(command.c_str()), 0);
}

#endif  // DAMOCLES_FAILPOINTS_ENABLED

// --- Backoff ---------------------------------------------------------------

TEST(BackoffTest, ZeroAttemptsNeverRetries) {
  BackoffPolicy policy;
  policy.attempts = 0;
  BackoffState state(policy);
  EXPECT_FALSE(state.ShouldRetry());
}

TEST(BackoffTest, DelaysGrowExponentiallyAndCap) {
  BackoffPolicy policy;
  policy.attempts = 5;
  policy.initial = std::chrono::milliseconds(2);
  policy.max = std::chrono::milliseconds(16);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;  // Exact schedule.
  BackoffState state(policy);
  const int64_t expected[] = {2, 4, 8, 16, 16};
  for (const int64_t want : expected) {
    ASSERT_TRUE(state.ShouldRetry());
    EXPECT_EQ(state.NextDelay().count(), want);
  }
  EXPECT_FALSE(state.ShouldRetry());
  EXPECT_EQ(state.attempt(), 5);
}

TEST(BackoffTest, JitterStaysInBoundsAndUnderCap) {
  BackoffPolicy policy;
  policy.attempts = 64;
  policy.initial = std::chrono::milliseconds(10);
  policy.max = std::chrono::milliseconds(80);
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  BackoffState state(policy);
  for (int k = 0; state.ShouldRetry(); ++k) {
    const double base = std::min(10.0 * std::pow(2.0, k), 80.0);
    const int64_t delay = state.NextDelay().count();
    EXPECT_GE(delay, static_cast<int64_t>(base * 0.5) - 1) << "attempt " << k;
    EXPECT_LE(delay, 80) << "attempt " << k;
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  policy.attempts = 10;
  policy.seed = 1234;
  BackoffState a(policy);
  BackoffState b(policy);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextDelay().count(), b.NextDelay().count());
  }
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  BackoffPolicy policy;
  policy.attempts = 2;
  policy.jitter = 0.0;
  policy.initial = std::chrono::milliseconds(3);
  BackoffState state(policy);
  EXPECT_EQ(state.NextDelay().count(), 3);
  state.NextDelay();
  EXPECT_FALSE(state.ShouldRetry());
  state.Reset();
  EXPECT_TRUE(state.ShouldRetry());
  EXPECT_EQ(state.NextDelay().count(), 3);
}

TEST(BackoffTest, ConstructorSanitizesPolicy) {
  BackoffPolicy policy;
  policy.attempts = -3;
  policy.initial = std::chrono::milliseconds(-5);
  policy.max = std::chrono::milliseconds(-10);
  policy.multiplier = 0.25;
  policy.jitter = 9.0;
  BackoffState state(policy);
  EXPECT_FALSE(state.ShouldRetry());  // Negative attempts clamp to zero.
}

}  // namespace
}  // namespace damocles::common
