#include "viz/flow_viz.hpp"

#include <gtest/gtest.h>

#include "blueprint/parser.hpp"
#include "test_util.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"

namespace damocles::viz {
namespace {

using testutil::MakeEdtcServer;

TEST(FlowDiagram, ShowsViewsLinksAndRules) {
  const auto bp = blueprint::ParseBlueprint(workload::EdtcBlueprintText());
  const std::string text = RenderFlowDiagram(bp);
  EXPECT_NE(text.find("[schematic]"), std::string::npos);
  EXPECT_NE(text.find("<-- HDL_model (derived) propagates outofdate"),
            std::string::npos);
  EXPECT_NE(text.find("<hierarchy> use_link propagates outofdate"),
            std::string::npos);
  EXPECT_NE(text.find("on ckin:"), std::string::npos);
  EXPECT_NE(text.find("[*] default view:"), std::string::npos);
  // The default view is summarized, not listed as a flow node.
  EXPECT_EQ(text.find("[default]"), std::string::npos);
}

TEST(BlockState, ShowsLatestVersionsAndIncomingLinks) {
  auto server = MakeEdtcServer();
  tools::ToolScheduler scheduler(*server);
  tools::Netlister netlister(*server);
  scheduler.InstallStandardScripts(netlister);
  workload::RunEdtcScenario(*server, scheduler);

  const std::string text = RenderBlockState(server->database(), "CPU");
  EXPECT_NE(text.find("block 'CPU'"), std::string::npos);
  EXPECT_NE(text.find("[HDL_model] v3"), std::string::npos);
  EXPECT_NE(text.find("[schematic] v1  uptodate=false"), std::string::npos);
  EXPECT_NE(text.find("<-- <CPU.HDL_model.3> (derived)"), std::string::npos);
}

TEST(BlockState, UnknownBlockSaysSo) {
  auto server = MakeEdtcServer();
  const std::string text = RenderBlockState(server->database(), "ghost");
  EXPECT_NE(text.find("(no tracked data)"), std::string::npos);
}

TEST(Dot, ExportsValidDigraphWithStateColors) {
  auto server = MakeEdtcServer();
  tools::ToolScheduler scheduler(*server);
  tools::Netlister netlister(*server);
  scheduler.InstallStandardScripts(netlister);
  workload::RunEdtcScenario(*server, scheduler);

  const std::string dot = ExportDot(server->database());
  EXPECT_EQ(dot.rfind("digraph damocles {", 0), 0u);
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Latest HDL model is current (green); schematic is stale (red).
  EXPECT_NE(dot.find("CPU__HDL_model__3"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=palegreen"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightcoral"), std::string::npos);
  // Hierarchy links are dashed; labels carry TYPE + PROPAGATE.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("label=\"derived\\noutofdate\""), std::string::npos);
}

TEST(Dot, LatestOnlyFiltersOldVersions) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "HDL_model", "v1", "alice");
  server->CheckIn("CPU", "HDL_model", "v2", "alice");

  DotOptions latest_only;
  const std::string dot = ExportDot(server->database(), latest_only);
  EXPECT_EQ(dot.find("CPU__HDL_model__1"), std::string::npos);
  EXPECT_NE(dot.find("CPU__HDL_model__2"), std::string::npos);

  DotOptions everything;
  everything.latest_only = false;
  const std::string full = ExportDot(server->database(), everything);
  EXPECT_NE(full.find("CPU__HDL_model__1"), std::string::npos);
}

TEST(Dot, OptionsDisableColorAndLabels) {
  auto server = MakeEdtcServer();
  const auto a = server->CheckIn("x", "HDL_model", "m", "u");
  const auto b = server->CheckIn("x", "schematic", "s", "u");
  server->RegisterLink(metadb::LinkKind::kDerive, a, b);

  DotOptions plain;
  plain.color_by_state = false;
  plain.label_links = false;
  const std::string dot = ExportDot(server->database(), plain);
  EXPECT_EQ(dot.find("palegreen"), std::string::npos);
  EXPECT_EQ(dot.find("label=\"derived"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);
}

}  // namespace
}  // namespace damocles::viz
