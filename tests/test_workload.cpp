#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "blueprint/parser.hpp"
#include "query/query.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"

namespace damocles::workload {
namespace {

using metadb::Oid;

std::unique_ptr<engine::ProjectServer> MakeFlowServer(const FlowSpec& spec) {
  auto server = std::make_unique<engine::ProjectServer>("wl");
  server->InitializeBlueprint(MakeFlowBlueprint(spec, "wl"));
  return server;
}

TEST(HierarchyGen, BlockCountFormula) {
  EXPECT_EQ(HierarchyBlockCount({0, 4, "v", "r"}), 1u);
  EXPECT_EQ(HierarchyBlockCount({1, 4, "v", "r"}), 5u);
  EXPECT_EQ(HierarchyBlockCount({2, 2, "v", "r"}), 7u);
  EXPECT_EQ(HierarchyBlockCount({3, 1, "v", "r"}), 4u);
}

TEST(HierarchyGen, BuildsTreeWithUseLinks) {
  FlowSpec flow;
  flow.n_views = 1;
  auto server = MakeFlowServer(flow);

  HierarchySpec spec;
  spec.depth = 2;
  spec.fanout = 3;
  spec.view = "view_0";
  const GeneratedHierarchy hierarchy = BuildHierarchy(*server, spec);

  EXPECT_EQ(hierarchy.blocks.size(), HierarchyBlockCount(spec));
  EXPECT_EQ(hierarchy.use_links, hierarchy.blocks.size() - 1);
  EXPECT_EQ(hierarchy.root, (Oid{"top", "view_0", 1}));

  // The whole tree is reachable through use links.
  query::ProjectQuery q(server->database());
  const auto members = q.HierarchyMembers(hierarchy.root);
  EXPECT_EQ(members.size(), hierarchy.blocks.size());
}

TEST(HierarchyGen, RejectsBadShape) {
  FlowSpec flow;
  flow.n_views = 1;
  auto server = MakeFlowServer(flow);
  HierarchySpec spec;
  spec.depth = -1;
  EXPECT_THROW(BuildHierarchy(*server, spec), Error);
  spec.depth = 1;
  spec.fanout = 0;
  EXPECT_THROW(BuildHierarchy(*server, spec), Error);
}

TEST(FlowGen, BlueprintParsesAndTracksAllViews) {
  FlowSpec spec;
  spec.n_views = 6;
  const auto bp = blueprint::ParseBlueprint(MakeFlowBlueprint(spec, "f"));
  for (const std::string& view : FlowViewNames(spec)) {
    EXPECT_TRUE(bp.Tracks(view)) << view;
  }
  EXPECT_NE(bp.DefaultView(), nullptr);
}

TEST(FlowGen, CutoffLoosensDownstreamLinks) {
  FlowSpec strict;
  strict.n_views = 4;
  FlowSpec loose = strict;
  loose.propagation_cutoff = 1;

  auto strict_server = MakeFlowServer(strict);
  auto loose_server = MakeFlowServer(loose);
  InstantiateFlow(*strict_server, strict, "blk");
  InstantiateFlow(*loose_server, loose, "blk");

  // A golden-view edit invalidates everything downstream under the
  // strict blueprint but stops at the cutoff under the loose one.
  strict_server->CheckIn("blk", "view_0", "edit", "u");
  loose_server->CheckIn("blk", "view_0", "edit", "u");

  query::ProjectQuery qs(strict_server->database());
  query::ProjectQuery ql(loose_server->database());
  EXPECT_EQ(qs.OutOfDate().size(), 3u);  // view_1..view_3.
  EXPECT_EQ(ql.OutOfDate().size(), 1u);  // view_1 only.
}

TEST(FlowGen, InstantiateCreatesChain) {
  FlowSpec spec;
  spec.n_views = 5;
  auto server = MakeFlowServer(spec);
  const Oid golden = InstantiateFlow(*server, spec, "blk");
  EXPECT_EQ(golden, (Oid{"blk", "view_0", 1}));

  const auto& db = server->database();
  size_t derive_links = 0;
  db.ForEachLink([&](metadb::LinkId, const metadb::Link& link) {
    if (link.kind == metadb::LinkKind::kDerive) ++derive_links;
  });
  EXPECT_EQ(derive_links, 4u);
}

TEST(TraceGen, DeterministicForSameSeed) {
  FlowSpec flow;
  flow.n_views = 3;
  TraceSpec trace;
  trace.n_actions = 200;
  trace.seed = 99;

  auto run = [&]() {
    auto server = MakeFlowServer(flow);
    InstantiateFlow(*server, flow, "a");
    InstantiateFlow(*server, flow, "b");
    const TraceStats stats = RunDesignSession(*server, flow, {"a", "b"},
                                              trace);
    return std::make_pair(stats,
                          server->engine().journal().Dump());
  };
  const auto [stats1, journal1] = run();
  const auto [stats2, journal2] = run();
  EXPECT_EQ(stats1.checkins, stats2.checkins);
  EXPECT_EQ(stats1.result_events, stats2.result_events);
  EXPECT_EQ(stats1.installs, stats2.installs);
  EXPECT_EQ(journal1, journal2);
}

TEST(TraceGen, ActionMixRoughlyMatchesWeights) {
  FlowSpec flow;
  flow.n_views = 3;
  auto server = MakeFlowServer(flow);
  InstantiateFlow(*server, flow, "a");

  TraceSpec trace;
  trace.n_actions = 2000;
  trace.seed = 7;
  const TraceStats stats = RunDesignSession(*server, flow, {"a"}, trace);
  EXPECT_EQ(stats.checkins + stats.result_events + stats.installs,
            trace.n_actions);
  EXPECT_NEAR(static_cast<double>(stats.checkins) / trace.n_actions, 0.55,
              0.05);
  EXPECT_NEAR(static_cast<double>(stats.result_events) / trace.n_actions,
              0.35, 0.05);
}

TEST(TraceGen, RequiresBlocks) {
  FlowSpec flow;
  auto server = MakeFlowServer(flow);
  EXPECT_THROW(RunDesignSession(*server, flow, {}, TraceSpec{}), Error);
}

TEST(Edtc, BlueprintTextsParse) {
  EXPECT_NO_THROW(blueprint::ParseBlueprint(EdtcBlueprintText()));
  EXPECT_NO_THROW(blueprint::ParseBlueprint(EdtcLoosenedBlueprintText()));
}

/// Scale sweep: hierarchy generation stays consistent across shapes.
struct ShapeCase {
  int depth;
  int fanout;
};

class HierarchyShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(HierarchyShapeSweep, CountsMatchFormula) {
  FlowSpec flow;
  flow.n_views = 1;
  auto server = MakeFlowServer(flow);
  HierarchySpec spec;
  spec.depth = GetParam().depth;
  spec.fanout = GetParam().fanout;
  spec.view = "view_0";
  const GeneratedHierarchy hierarchy = BuildHierarchy(*server, spec);
  EXPECT_EQ(hierarchy.blocks.size(), HierarchyBlockCount(spec));
  EXPECT_EQ(server->database().Stats().live_objects,
            hierarchy.blocks.size());
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierarchyShapeSweep,
                         ::testing::Values(ShapeCase{0, 1}, ShapeCase{1, 1},
                                           ShapeCase{1, 8}, ShapeCase{2, 4},
                                           ShapeCase{3, 3}, ShapeCase{5, 2}));

}  // namespace
}  // namespace damocles::workload
