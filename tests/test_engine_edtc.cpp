// Integration: the paper's §3.4 EDTC scenario, end to end.
#include <gtest/gtest.h>

#include "query/query.hpp"
#include "query/report.hpp"
#include "test_util.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"

namespace damocles {
namespace {

using metadb::Oid;
using testutil::LatestProp;
using testutil::MakeEdtcServer;
using testutil::Prop;

class EdtcScenarioTest : public ::testing::Test {
 protected:
  EdtcScenarioTest()
      : server_(MakeEdtcServer()),
        scheduler_(*server_),
        netlister_(*server_) {
    scheduler_.InstallStandardScripts(netlister_);
  }

  std::unique_ptr<engine::ProjectServer> server_;
  tools::ToolScheduler scheduler_;
  tools::Netlister netlister_;
};

TEST_F(EdtcScenarioTest, FullScenarioMatchesThePaperNarrative) {
  const auto steps = workload::RunEdtcScenario(*server_, scheduler_);
  ASSERT_EQ(steps.size(), 5u);

  const metadb::MetaDatabase& db = server_->database();

  // All the paper's OIDs exist.
  EXPECT_TRUE(db.FindObject(Oid{"CPU", "HDL_model", 1}).has_value());
  EXPECT_TRUE(db.FindObject(Oid{"CPU", "HDL_model", 2}).has_value());
  EXPECT_TRUE(db.FindObject(Oid{"CPU", "HDL_model", 3}).has_value());
  EXPECT_TRUE(db.FindObject(Oid{"CPU", "schematic", 1}).has_value());
  EXPECT_TRUE(db.FindObject(Oid{"REG", "schematic", 1}).has_value());
  EXPECT_TRUE(db.FindObject(Oid{"CPU", "netlist", 1}).has_value());

  // Step 2: v1 failed simulation.
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "HDL_model", 1}, "sim_result"),
            "4 errors");
  // Step 3: v2 passed.
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "HDL_model", 2}, "sim_result"), "good");
  // sim_result does not carry across versions (no copy/move in the
  // blueprint): v3 re-defaults to bad.
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "HDL_model", 3}, "sim_result"), "bad");

  // Step 5: checking in HDL v3 posted outofdate down; the schematic, its
  // hierarchy component REG and the netlist are all out of date.
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "schematic", 1}, "uptodate"), "false");
  EXPECT_EQ(Prop(*server_, Oid{"REG", "schematic", 1}, "uptodate"), "false");
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "netlist", 1}, "uptodate"), "false");
  // The HDL model itself is current.
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "HDL_model", 3}, "uptodate"), "true");
}

TEST_F(EdtcScenarioTest, AutomaticallyNetlistedDataIsBornUpToDate) {
  // Regression: wrapper scripts launched by a ckin rule run only after
  // the ckin's outofdate wave has propagated. The netlist the netlister
  // produces derives from the *new* schematic version and must not be
  // invalidated by the very event that created it.
  tools::HdlEditor editor(*server_);
  tools::SynthesisTool synthesis(*server_);
  editor.Edit("CPU", "model", "alice");
  server_->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                          "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {"REG"}, "bob").has_value());

  EXPECT_EQ(LatestProp(*server_, "CPU", "netlist", "uptodate"), "true");
  EXPECT_EQ(LatestProp(*server_, "REG", "netlist", "uptodate"), "true");
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "uptodate"), "true");
}

TEST_F(EdtcScenarioTest, RetighteningRetemplatesExistingLinks) {
  // Build data under the loosened blueprint, then re-initialize with
  // the strict rules: the links created in the loose phase must start
  // propagating outofdate again (ServerOptions.retemplate_on_init).
  server_->InitializeBlueprint(workload::EdtcLoosenedBlueprintText());
  tools::HdlEditor editor(*server_);
  tools::SynthesisTool synthesis(*server_);
  editor.Edit("CPU", "model", "alice");
  server_->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                          "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {"REG"}, "bob").has_value());

  // Loose phase: an HDL edit does not invalidate the schematic.
  editor.Edit("CPU", "model rev2", "alice");
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "uptodate"), "true");

  // Tighten. The same activity now fans out.
  server_->InitializeBlueprint(workload::EdtcBlueprintText());
  editor.Edit("CPU", "model rev3", "alice");
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "uptodate"), "false");
  EXPECT_EQ(LatestProp(*server_, "REG", "schematic", "uptodate"), "false");
}

TEST_F(EdtcScenarioTest, NetlisterRanAutomaticallyOnSchematicCheckins) {
  workload::RunEdtcScenario(*server_, scheduler_);
  // Two schematic check-ins (CPU and REG) -> two automatic netlister
  // invocations via the exec rule.
  EXPECT_EQ(scheduler_.automatic_runs(), 2u);
  EXPECT_TRUE(server_->database()
                  .FindObject(Oid{"REG", "netlist", 1})
                  .has_value());
}

TEST_F(EdtcScenarioTest, SchematicStateAssignmentTracksResults) {
  workload::RunEdtcScenario(*server_, scheduler_);
  // state = (nl_sim_res == good) and (lvs_res == is_equiv) and uptodate.
  EXPECT_EQ(Prop(*server_, Oid{"CPU", "schematic", 1}, "state"), "false");

  // Re-check-in the schematic (validates it), post good results.
  server_->CheckIn("CPU", "schematic", "rev2", "bob");
  server_->SubmitWireLine("postEvent nl_sim up CPU,netlist,2 good", "bob");
  server_->Submit([&] {
    events::EventMessage event;
    event.name = "lvs";
    event.direction = events::Direction::kUp;
    event.target = Oid{"CPU", "schematic", 2};
    event.arg = "is_equiv";
    event.user = "bob";
    return event;
  }());
  // nl_sim on the new netlist propagates up to the schematic; lvs was
  // delivered directly... but the schematic has no 'when lvs' rule, so
  // only nl_sim_res and uptodate feed the state.
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "nl_sim_res"), "good");
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "uptodate"), "true");
}

TEST_F(EdtcScenarioTest, LibraryInstallInvalidatesDependents) {
  // §3.4: "the installation of a new version of the library will
  // automatically invalidate data which depends on it".
  tools::LibraryInstaller installer(*server_);
  tools::HdlEditor editor(*server_);
  tools::SynthesisTool synthesis(*server_);

  installer.Install("CPU", "stdcell lib v1", "cad_admin");
  editor.Edit("CPU", "model", "alice");
  server_->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                          "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {"REG"}, "bob").has_value());
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "uptodate"), "true");

  // New library version: ckin posts outofdate down through the moved
  // depend_on link.
  installer.Install("CPU", "stdcell lib v2", "cad_admin");
  EXPECT_EQ(LatestProp(*server_, "CPU", "schematic", "uptodate"), "false");
  EXPECT_EQ(LatestProp(*server_, "REG", "schematic", "uptodate"), "false");
}

TEST_F(EdtcScenarioTest, QueriesAnswerWhatBlocksThePlannedState) {
  workload::RunEdtcScenario(*server_, scheduler_);
  query::ProjectQuery q(server_->database());

  const auto stale = q.OutOfDate();
  EXPECT_EQ(stale.size(), 4u);  // CPU+REG schematic, CPU+REG netlist.

  const auto blockers = q.DistanceToPlannedState(
      {{"uptodate", "true"}, {"sim_result", "good"}},
      {"schematic", "netlist", "HDL_model"});
  // Latest versions: HDL_model.3 (sim_result bad), schematics and
  // netlists (uptodate false, netlist sim_result bad).
  EXPECT_GE(blockers.size(), 5u);

  const auto report = query::BuildProjectReport(server_->database());
  EXPECT_EQ(report.out_of_date, 4u);
  EXPECT_GT(report.total, 4u);
}

TEST_F(EdtcScenarioTest, ScenarioIsDeterministic) {
  const auto steps1 = workload::RunEdtcScenario(*server_, scheduler_);

  auto server2 = MakeEdtcServer();
  tools::ToolScheduler scheduler2(*server2);
  tools::Netlister netlister2(*server2);
  scheduler2.InstallStandardScripts(netlister2);
  const auto steps2 = workload::RunEdtcScenario(*server2, scheduler2);

  ASSERT_EQ(steps1.size(), steps2.size());
  for (size_t i = 0; i < steps1.size(); ++i) {
    EXPECT_EQ(steps1[i].description, steps2[i].description);
    EXPECT_EQ(steps1[i].detail, steps2[i].detail);
  }
  EXPECT_EQ(server_->engine().journal().Dump(),
            server2->engine().journal().Dump());
}

TEST(EdtcLoosened, LoosenedBlueprintLimitsPropagation) {
  auto server = std::make_unique<engine::ProjectServer>("loose");
  server->InitializeBlueprint(workload::EdtcLoosenedBlueprintText());
  tools::HdlEditor editor(*server);
  tools::SynthesisTool synthesis(*server);

  editor.Edit("CPU", "model", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good", "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {"REG"}, "bob").has_value());

  // A new HDL version does NOT invalidate the schematic in the loose
  // phase: links propagate nothing.
  editor.Edit("CPU", "model rev2", "alice");
  EXPECT_EQ(LatestProp(*server, "CPU", "schematic", "uptodate"), "true");
  EXPECT_EQ(server->engine().stats().propagated_deliveries, 0u);
}

}  // namespace
}  // namespace damocles
