#include <gtest/gtest.h>

#include "common/error.hpp"

#include "baseline/activity_driven.hpp"
#include "baseline/full_recompute.hpp"
#include "baseline/polling.hpp"
#include "common/error.hpp"
#include "query/query.hpp"
#include "workload/generators.hpp"

namespace damocles::baseline {
namespace {

using metadb::Oid;

// --- Full recompute -----------------------------------------------------------

TEST(FullRecompute, MarksDownstreamOfNewerSources) {
  metadb::MetaDatabase db;
  const auto a = db.CreateNextVersion("x", "a", "u", 10);
  const auto b = db.CreateNextVersion("x", "b", "u", 20);
  const auto c = db.CreateNextVersion("x", "c", "u", 30);
  db.CreateLink(metadb::LinkKind::kDerive, a, b, {}, "", {});
  db.CreateLink(metadb::LinkKind::kDerive, b, c, {}, "", {});

  FullRecomputeTracker tracker(db);
  tracker.RecomputeAll();
  // Chain created in order: nothing stale.
  EXPECT_EQ(*db.GetProperty(a, "uptodate"), "true");
  EXPECT_EQ(*db.GetProperty(c, "uptodate"), "true");

  // A newer version of the source makes b and c stale once the link is
  // re-pointed at it (move semantics).
  const auto a2 = db.CreateNextVersion("x", "a", "u", 40);
  db.MoveLinkEndpoint(db.OutLinks(a)[0], /*endpoint_from=*/true, a2);
  tracker.RecomputeAll();
  EXPECT_EQ(*db.GetProperty(a2, "uptodate"), "true");
  EXPECT_EQ(*db.GetProperty(b, "uptodate"), "false");
  EXPECT_EQ(*db.GetProperty(c, "uptodate"), "false");
}

TEST(FullRecompute, HandlesCycles) {
  metadb::MetaDatabase db;
  const auto a = db.CreateNextVersion("x", "a", "u", 10);
  const auto b = db.CreateNextVersion("x", "b", "u", 20);
  db.CreateLink(metadb::LinkKind::kDerive, a, b, {}, "", {});
  db.CreateLink(metadb::LinkKind::kDerive, b, a, {}, "", {});
  FullRecomputeTracker tracker(db);
  EXPECT_NO_THROW(tracker.RecomputeAll());
  // b's upstream a (t=10) is older; a's upstream b (t=20) is newer.
  EXPECT_EQ(*db.GetProperty(a, "uptodate"), "false");
}

TEST(FullRecompute, StatsAccumulate) {
  metadb::MetaDatabase db;
  db.CreateNextVersion("x", "a", "u", 1);
  db.CreateNextVersion("x", "b", "u", 2);
  FullRecomputeTracker tracker(db);
  tracker.RecomputeAll();
  tracker.RecomputeAll();
  EXPECT_EQ(tracker.stats().sweeps, 2u);
  EXPECT_EQ(tracker.stats().objects_visited, 4u);
}

/// The headline equivalence property: on identical traces, the selective
/// event-driven engine and the full-recompute baseline agree on which
/// latest versions are out of date.
class SelectiveVsFullSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectiveVsFullSweep, AgreeOnLatestVersionStaleness) {
  workload::FlowSpec flow;
  flow.n_views = 4;
  workload::TraceSpec trace;
  trace.n_actions = 150;
  trace.seed = GetParam();

  // Run the trace through the BluePrint engine.
  engine::ProjectServer server("equiv");
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "equiv"));
  workload::InstantiateFlow(server, flow, "blk_a");
  workload::InstantiateFlow(server, flow, "blk_b");
  workload::RunDesignSession(server, flow, {"blk_a", "blk_b"}, trace);

  // Recompute from scratch on the same meta-database and compare.
  query::ProjectQuery q(server.database());
  const auto latest_before = q.LatestVersions(nullptr);
  std::map<std::string, std::string> engine_state;
  for (const auto& match : latest_before) {
    engine_state[FormatOid(match.oid)] =
        server.database().GetObject(match.id).PropertyOr("uptodate", "?");
  }

  FullRecomputeTracker tracker(
      const_cast<metadb::MetaDatabase&>(server.database()));
  tracker.RecomputeAll();

  for (const auto& match : q.LatestVersions(nullptr)) {
    const std::string recomputed =
        server.database().GetObject(match.id).PropertyOr("uptodate", "?");
    EXPECT_EQ(engine_state.at(FormatOid(match.oid)), recomputed)
        << "disagreement on " << FormatOid(match.oid) << " (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectiveVsFullSweep,
                         ::testing::Values(1ull, 7ull, 42ull, 1995ull,
                                           0xc0ffeeull));

// --- Activity-driven manager -------------------------------------------------

std::vector<ActivityDef> SampleFlow() {
  return {
      {"synthesis", {"HDL_model"}, {"schematic"}},
      {"netlister", {"schematic"}, {"netlist"}},
      {"nl_sim", {"netlist"}, {}},
  };
}

TEST(ActivityDriven, DeniesWhenInputsMissing) {
  ActivityDrivenManager manager(SampleFlow());
  EXPECT_FALSE(manager.BeginActivity("synthesis", "CPU").has_value());
  EXPECT_EQ(manager.stats().denials, 1u);
}

TEST(ActivityDriven, UnknownActivityThrows) {
  ActivityDrivenManager manager(SampleFlow());
  EXPECT_THROW(manager.BeginActivity("place_route", "CPU"), NotFoundError);
}

TEST(ActivityDriven, FullFlowRunsWhenSeeded) {
  ActivityDrivenManager manager(SampleFlow());
  manager.SeedData("CPU", "HDL_model");

  const auto synth = manager.BeginActivity("synthesis", "CPU");
  ASSERT_TRUE(synth.has_value());
  manager.EndActivity(*synth, /*success=*/true);
  EXPECT_EQ(manager.StateOf("CPU", "schematic"), DataState::kValid);

  const auto net = manager.BeginActivity("netlister", "CPU");
  ASSERT_TRUE(net.has_value());
  manager.EndActivity(*net, true);
  EXPECT_EQ(manager.StateOf("CPU", "netlist"), DataState::kValid);
}

TEST(ActivityDriven, LocksBlockConcurrentActivities) {
  ActivityDrivenManager manager(SampleFlow());
  manager.SeedData("CPU", "HDL_model");
  const auto first = manager.BeginActivity("synthesis", "CPU");
  ASSERT_TRUE(first.has_value());
  // Input HDL_model is locked: a second begin is denied.
  EXPECT_FALSE(manager.BeginActivity("synthesis", "CPU").has_value());
  manager.EndActivity(*first, true);
  EXPECT_TRUE(manager.BeginActivity("synthesis", "CPU").has_value());
}

TEST(ActivityDriven, SuccessInvalidatesDownstream) {
  ActivityDrivenManager manager(SampleFlow());
  manager.SeedData("CPU", "HDL_model");
  auto t = manager.BeginActivity("synthesis", "CPU");
  manager.EndActivity(*t, true);
  t = manager.BeginActivity("netlister", "CPU");
  manager.EndActivity(*t, true);

  // Re-running synthesis invalidates the netlist transitively.
  t = manager.BeginActivity("synthesis", "CPU");
  manager.EndActivity(*t, true);
  EXPECT_EQ(manager.StateOf("CPU", "netlist"), DataState::kStale);
  EXPECT_GE(manager.stats().invalidations, 1u);
}

TEST(ActivityDriven, FailureLeavesStatesUntouched) {
  ActivityDrivenManager manager(SampleFlow());
  manager.SeedData("CPU", "HDL_model");
  const auto t = manager.BeginActivity("synthesis", "CPU");
  manager.EndActivity(*t, /*success=*/false);
  EXPECT_EQ(manager.StateOf("CPU", "schematic"), DataState::kMissing);
}

TEST(ActivityDriven, EveryBeginCostsStateChecks) {
  ActivityDrivenManager manager(SampleFlow());
  manager.SeedData("CPU", "HDL_model");
  const auto t = manager.BeginActivity("synthesis", "CPU");
  manager.EndActivity(*t, true);
  // One check for the single input view.
  EXPECT_EQ(manager.stats().state_checks, 1u);
  EXPECT_EQ(manager.stats().locks_taken, 2u);  // Input + output.
}

// --- Polling tracker --------------------------------------------------------------

TEST(Polling, DetectsChangesWithLag) {
  metadb::Workspace workspace("w");
  PollingTracker tracker(workspace);

  workspace.CheckIn("cpu", "hdl", "v1", "alice", 100);
  const auto first = tracker.Poll(160);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].oid, (Oid{"cpu", "hdl", 1}));
  EXPECT_EQ(first[0].detected_at - first[0].modified_at, 60);

  // Nothing new: empty poll, but files were still scanned.
  EXPECT_TRUE(tracker.Poll(220).empty());
  EXPECT_EQ(tracker.stats().polls, 2u);
  EXPECT_GE(tracker.stats().files_scanned, 2u);

  workspace.CheckIn("cpu", "hdl", "v2", "alice", 230);
  const auto second = tracker.Poll(300);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].oid.version, 2);
  EXPECT_EQ(tracker.stats().AverageLagSeconds(), (60 + 70) / 2.0);
}

TEST(Polling, ScanCostGrowsWithRepository) {
  metadb::Workspace workspace("w");
  for (int i = 0; i < 50; ++i) {
    workspace.CheckIn("blk" + std::to_string(i), "hdl", "x", "u", i);
  }
  PollingTracker tracker(workspace);
  tracker.Poll(1000);
  EXPECT_EQ(tracker.stats().files_scanned, 50u);
  tracker.Poll(1001);  // Quiet poll still scans everything.
  EXPECT_EQ(tracker.stats().files_scanned, 100u);
}

}  // namespace
}  // namespace damocles::baseline
