#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "events/wal.hpp"
#include "test_util.hpp"
#include "tools/scheduler.hpp"
#include "tools/script_registry.hpp"
#include "tools/simulated_tools.hpp"
#include "workload/edtc.hpp"

namespace damocles::tools {
namespace {

using metadb::Oid;
using testutil::LatestProp;
using testutil::MakeEdtcServer;

engine::ExecRequest MakeRequest(const std::string& script) {
  engine::ExecRequest request;
  request.script = script;
  request.target = Oid{"CPU", "schematic", 1};
  request.event = "ckin";
  request.user = "alice";
  return request;
}

TEST(ScriptRegistry, ExecutesRegisteredScripts) {
  ScriptRegistry registry;
  int calls = 0;
  registry.Register("tool.sh", [&](const engine::ExecRequest&) {
    ++calls;
    return 0;
  });
  EXPECT_TRUE(registry.Has("tool.sh"));
  EXPECT_EQ(registry.Execute(MakeRequest("tool.sh")), 0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(registry.CallCount("tool.sh"), 1u);
}

TEST(ScriptRegistry, UnknownScriptReturns127OrThrows) {
  ScriptRegistry lenient(/*strict=*/false);
  EXPECT_EQ(lenient.Execute(MakeRequest("ghost")), 127);
  EXPECT_EQ(lenient.History().size(), 1u);

  ScriptRegistry strict(/*strict=*/true);
  EXPECT_THROW(strict.Execute(MakeRequest("ghost")), NotFoundError);
}

TEST(ScriptRegistry, HistoryRecordsEverything) {
  ScriptRegistry registry;
  registry.Register("a", [](const engine::ExecRequest&) { return 0; });
  registry.Execute(MakeRequest("a"));
  registry.Execute(MakeRequest("missing"));
  EXPECT_EQ(registry.History().size(), 2u);
  registry.ClearHistory();
  EXPECT_TRUE(registry.History().empty());
}

TEST(Permission, DeniedWhenNoVersionExists) {
  auto server = MakeEdtcServer();
  const PermissionDecision decision =
      RequestPermission(*server, "CPU", "netlist", {{"uptodate", "true"}});
  EXPECT_FALSE(decision.granted);
  EXPECT_NE(decision.reason.find("no version"), std::string::npos);
}

TEST(Permission, ChecksLatestVersionProperties) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "netlist", "n1", "bob");
  EXPECT_TRUE(RequestPermission(*server, "CPU", "netlist",
                                {{"uptodate", "true"}})
                  .granted);

  // Invalidate: permission must now be denied, with the reason naming
  // the property (paper §3.3's netlist-up-to-date gate).
  server->Submit([] {
    events::EventMessage event;
    event.name = "outofdate";
    event.direction = events::Direction::kDown;
    event.target = Oid{"CPU", "netlist", 1};
    return event;
  }());
  const PermissionDecision denied = RequestPermission(
      *server, "CPU", "netlist", {{"uptodate", "true"}});
  EXPECT_FALSE(denied.granted);
  EXPECT_NE(denied.reason.find("uptodate"), std::string::npos);
}

TEST(VerdictModel, ExtremesAndDeterminism) {
  const VerdictModel always_pass{0.0};
  EXPECT_EQ(always_pass.Judge("anything", "fail"), "good");
  const VerdictModel always_fail{1.0};
  const std::string verdict = always_fail.Judge("anything", "fail");
  EXPECT_NE(verdict.find("fail"), std::string::npos);
  EXPECT_NE(verdict.find("errors"), std::string::npos);
  // Same content, same verdict.
  const VerdictModel mixed{0.5};
  EXPECT_EQ(mixed.Judge("content-x", "f"), mixed.Judge("content-x", "f"));
}

TEST(SimulatedTools, HdlFlowEndToEnd) {
  auto server = MakeEdtcServer();
  HdlEditor editor(*server);
  HdlSimulator simulator(*server, VerdictModel{0.0});

  editor.Edit("CPU", "model", "alice");
  const std::string verdict = simulator.Simulate("CPU", "alice");
  EXPECT_EQ(verdict, "good");
  EXPECT_EQ(LatestProp(*server, "CPU", "HDL_model", "sim_result"), "good");
  EXPECT_EQ(simulator.runs(), 1u);
}

TEST(SimulatedTools, SimulatorDeniedWithoutModel) {
  auto server = MakeEdtcServer();
  HdlSimulator simulator(*server, VerdictModel{0.0});
  EXPECT_EQ(simulator.Simulate("CPU", "alice"), "");
  EXPECT_EQ(simulator.denials(), 1u);
}

TEST(SimulatedTools, SynthesisGateRequiresGoodSim) {
  auto server = MakeEdtcServer();
  HdlEditor editor(*server);
  SynthesisTool synthesis(*server);

  editor.Edit("CPU", "model", "alice");
  // sim_result defaults to 'bad': synthesis must refuse (paper §3.3).
  EXPECT_FALSE(synthesis.Synthesize("CPU", {"REG"}, "bob").has_value());
  EXPECT_EQ(synthesis.denials(), 1u);

  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good", "alice");
  const auto top = synthesis.Synthesize("CPU", {"REG"}, "bob");
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(*top, (Oid{"CPU", "schematic", 1}));
  // Hierarchy + derivation links registered.
  const auto& db = server->database();
  const auto top_id = db.FindObject(*top);
  EXPECT_EQ(db.OutLinks(*top_id).size(), 1u);  // use link to REG.
  EXPECT_EQ(db.InLinks(*top_id).size(), 1u);   // derive from HDL model.
}

TEST(SimulatedTools, NetlistSimulatorRequiresFreshNetlist) {
  auto server = MakeEdtcServer();
  HdlEditor editor(*server);
  SynthesisTool synthesis(*server);
  Netlister netlister(*server);
  NetlistSimulator nl_sim(*server, VerdictModel{0.0});

  editor.Edit("CPU", "model", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good", "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {}, "bob").has_value());
  ASSERT_TRUE(netlister.Netlist("CPU", "bob").has_value());

  EXPECT_EQ(nl_sim.Simulate("CPU", "bob"), "good");
  EXPECT_EQ(LatestProp(*server, "CPU", "netlist", "sim_result"), "good");
  // nl_sim propagated up the derive link to the schematic.
  EXPECT_EQ(LatestProp(*server, "CPU", "schematic", "nl_sim_res"), "good");

  // Invalidate the netlist via a new HDL version: gate closes.
  editor.Edit("CPU", "model rev2", "alice");
  EXPECT_EQ(nl_sim.Simulate("CPU", "bob"), "");
  EXPECT_EQ(nl_sim.denials(), 1u);
}

TEST(SimulatedTools, LayoutDrcLvsFlow) {
  auto server = MakeEdtcServer();
  HdlEditor editor(*server);
  SynthesisTool synthesis(*server);
  LayoutEditor layout(*server);
  DrcTool drc(*server, VerdictModel{0.0});
  LvsTool lvs(*server, VerdictModel{0.0});

  editor.Edit("CPU", "model", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good", "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {}, "bob").has_value());
  ASSERT_TRUE(layout.Draw("CPU", "carol").has_value());

  EXPECT_EQ(drc.Check("CPU", "carol"), "good");
  EXPECT_EQ(lvs.Check("CPU", "carol"), "is_equiv");
  EXPECT_EQ(LatestProp(*server, "CPU", "layout", "drc_result"), "good");
  EXPECT_EQ(LatestProp(*server, "CPU", "layout", "lvs_result"), "is_equiv");
  // layout state = drc good and lvs equiv and uptodate.
  EXPECT_EQ(LatestProp(*server, "CPU", "layout", "state"), "true");
}

TEST(Scheduler, ExecRuleDrivesAutomaticNetlisting) {
  auto server = MakeEdtcServer();
  ToolScheduler scheduler(*server);
  Netlister netlister(*server);
  scheduler.InstallStandardScripts(netlister);
  HdlEditor editor(*server);
  SynthesisTool synthesis(*server);

  editor.Edit("CPU", "model", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good", "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {}, "bob").has_value());

  // The schematic check-in fired `exec netlister "$oid"`.
  ASSERT_EQ(scheduler.automatic_runs(), 1u);
  EXPECT_EQ(scheduler.ledger()[0].script, "netlister");
  EXPECT_EQ(scheduler.ledger()[0].exit_status, 0);
  EXPECT_TRUE(
      server->database().FindObject(Oid{"CPU", "netlist", 1}).has_value());

  // Another schematic check-in triggers another netlist version.
  server->CheckIn("CPU", "schematic", "rev2", "bob");
  EXPECT_EQ(scheduler.automatic_runs(), 2u);
  EXPECT_TRUE(
      server->database().FindObject(Oid{"CPU", "netlist", 2}).has_value());
}

TEST(Scheduler, CustomScriptLedger) {
  auto server = MakeEdtcServer();
  ToolScheduler scheduler(*server);
  int calls = 0;
  scheduler.Register("lint", [&](const engine::ExecRequest&) {
    ++calls;
    return 3;
  });

  server->InitializeBlueprint(R"(
      blueprint lint_bp
      view HDL_model
        when ckin do exec lint "$oid" done
      endview
      endblueprint)");
  server->CheckIn("CPU", "HDL_model", "m", "alice");
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(scheduler.ledger().size(), 1u);
  EXPECT_EQ(scheduler.ledger()[0].exit_status, 3);
}

TEST(Wrapper, PostWireGoesThroughCodec) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "HDL_model", "m", "alice");

  class Probe : public WrapperProgram {
   public:
    explicit Probe(engine::ProjectServer& server)
        : WrapperProgram(server, "probe") {}
    void Fire() {
      PostWire("hdl_sim", events::Direction::kUp,
               Oid{"CPU", "HDL_model", 1}, "good", "alice");
    }
  };
  Probe probe(*server);
  probe.Fire();
  EXPECT_EQ(LatestProp(*server, "CPU", "HDL_model", "sim_result"), "good");
}

// --- wal_inspect --json ---------------------------------------------------

/// Scratch WAL directory, removed on destruction.
class ToolTempDir {
 public:
  explicit ToolTempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("damocles-tools-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ToolTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

void WriteSomeWal(const std::string& dir) {
  engine::ServerOptions options;
  options.wal_dir = dir;
  auto server = MakeEdtcServer(options);
  server->CheckIn("CPU", "HDL_model", "m1", "alice");
  server->CheckIn("CPU", "schematic", "s1", "alice");
  server->CheckIn("CPU", "HDL_model", "m2", "alice");
  server->Drain();
}

TEST(WalInspectJson, RoundTripsAgainstStreamData) {
  ToolTempDir dir("waljson");
  WriteSomeWal(dir.str());

  bool torn = true;
  const std::string json = events::FormatWalInspectionJson(dir.str(), &torn);
  EXPECT_FALSE(torn);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"torn\": false}"), std::string::npos);

  // Round trip: every stream, segment header and record count the scan
  // API reports appears verbatim in the JSON report.
  const std::vector<std::string> streams = events::ListWalStreams(dir.str());
  ASSERT_FALSE(streams.empty());
  for (const std::string& stream : streams) {
    const events::WalStreamData data = events::ReadWalStream(dir.str(), stream);
    EXPECT_NE(json.find("\"name\": \"" + stream + "\""), std::string::npos);
    EXPECT_NE(json.find("\"valid_end\": " + std::to_string(data.valid_end)),
              std::string::npos);
    EXPECT_NE(json.find("\"rows\": " + std::to_string(data.rows.size())),
              std::string::npos);
    for (const events::WalSegmentInfo& info : data.segments) {
      const std::string file =
          std::filesystem::path(info.path).filename().string();
      EXPECT_NE(json.find("\"file\": \"" + file + "\""), std::string::npos);
      EXPECT_NE(json.find("\"records\": " + std::to_string(info.records)),
                std::string::npos);
      EXPECT_NE(
          json.find("\"base_offset\": " + std::to_string(info.base_offset)),
          std::string::npos);
      EXPECT_FALSE(info.torn);
    }
  }
  EXPECT_EQ(json.find("\"torn_offset\""), std::string::npos)
      << "a clean directory must not report a torn tail";
}

TEST(WalInspectJson, TornTailOffsetMatchesTextReport) {
  ToolTempDir dir("waltorn");
  WriteSomeWal(dir.str());

  // Tear a segment mid-record: drop the last 3 bytes of one that holds
  // records (a record is always longer than 3 bytes, so the cut cannot
  // land on a boundary).
  std::string victim_stream;
  std::string victim_path;
  for (const std::string& stream : events::ListWalStreams(dir.str())) {
    const events::WalStreamData data = events::ReadWalStream(dir.str(), stream);
    for (const events::WalSegmentInfo& info : data.segments) {
      if (info.records > 0 && info.file_bytes > 3) {
        victim_stream = stream;
        victim_path = info.path;
      }
    }
  }
  ASSERT_FALSE(victim_path.empty());
  std::filesystem::resize_file(
      victim_path, std::filesystem::file_size(victim_path) - 3);

  bool torn_json = false;
  const std::string json =
      events::FormatWalInspectionJson(dir.str(), &torn_json);
  EXPECT_TRUE(torn_json);
  EXPECT_NE(json.find("\"torn\": true"), std::string::npos);

  // The scanner, the JSON report and the text report must agree on the
  // byte where the intact prefix ends.
  const events::WalStreamData data =
      events::ReadWalStream(dir.str(), victim_stream);
  uint64_t torn_offset = 0;
  bool found = false;
  for (const events::WalSegmentInfo& info : data.segments) {
    if (info.path == victim_path) {
      EXPECT_TRUE(info.torn);
      torn_offset = info.valid_bytes;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_NE(json.find("\"torn_offset\": " + std::to_string(torn_offset)),
            std::string::npos);

  bool torn_text = false;
  const std::string text = events::FormatWalInspection(dir.str(), &torn_text);
  EXPECT_TRUE(torn_text);
  EXPECT_NE(
      text.find("torn tail at byte " + std::to_string(torn_offset)),
      std::string::npos);
}

}  // namespace
}  // namespace damocles::tools
