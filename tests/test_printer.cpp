#include "blueprint/printer.hpp"

#include <gtest/gtest.h>

#include "blueprint/parser.hpp"
#include "workload/edtc.hpp"
#include "workload/generators.hpp"

namespace damocles::blueprint {
namespace {

TEST(Printer, FixedPointAfterOnePass) {
  // print(parse(text)) normalizes; printing again must be identical.
  const std::string normalized =
      FormatBlueprint(ParseBlueprint(workload::EdtcBlueprintText()));
  const std::string again = FormatBlueprint(ParseBlueprint(normalized));
  EXPECT_EQ(normalized, again);
}

TEST(Printer, PreservesEveryConstruct) {
  const char* source = R"(
    blueprint roundtrip
    view default
      property uptodate default true
      when ckin do uptodate = true; post outofdate down done
    endview
    view v
      property p default "two words" copy
      property q default bad move
      link_from w move propagates a, b type depend_on
      use_link propagates c
      let state = ($p == good) and (not ($q != bad)) or ($uptodate == true)
      when ev do
        p = $arg;
        exec tool.sh "$oid" literal;
        notify "$owner: check $OID";
        post ping up to w "$p";
        post pong down
      done
    endview
    endblueprint)";
  const std::string printed = FormatBlueprint(ParseBlueprint(source));
  const Blueprint reparsed = ParseBlueprint(printed);

  const ViewTemplate* view = reparsed.FindView("v");
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->properties.size(), 2u);
  EXPECT_EQ(view->properties[0].default_value, "two words");
  EXPECT_EQ(view->properties[0].carry, metadb::CarryPolicy::kCopy);
  ASSERT_EQ(view->links.size(), 2u);
  EXPECT_EQ(view->links[0].propagates.size(), 2u);
  EXPECT_EQ(view->links[1].kind, metadb::LinkKind::kUse);
  ASSERT_EQ(view->rules.size(), 1u);
  ASSERT_EQ(view->rules[0].actions.size(), 5u);
  const auto& post = std::get<ActionPost>(view->rules[0].actions[3]);
  EXPECT_EQ(post.to_view, "w");
  EXPECT_EQ(post.arg.source(), "$p");

  // Second pass is stable.
  EXPECT_EQ(printed, FormatBlueprint(reparsed));
}

TEST(Printer, FormatActionRendersEachKind) {
  ActionAssign assign{"uptodate", StringTemplate::Literal("true")};
  EXPECT_EQ(FormatAction(Action{std::move(assign)}), "uptodate = true");

  ActionExec exec;
  exec.script = StringTemplate::Literal("netlister");
  exec.args.push_back(StringTemplate::Variable("oid"));
  EXPECT_EQ(FormatAction(Action{std::move(exec)}), "exec netlister $oid");

  ActionNotify notify;
  notify.message = StringTemplate::Parse("watch $OID");
  EXPECT_EQ(FormatAction(Action{std::move(notify)}),
            "notify \"watch $OID\"");

  ActionPost post;
  post.event = "outofdate";
  post.direction = events::Direction::kDown;
  EXPECT_EQ(FormatAction(Action{std::move(post)}), "post outofdate down");
}

/// Round-trip sweep over generated flow blueprints of various shapes.
class PrinterFlowSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrinterFlowSweep, GeneratedFlowsRoundTrip) {
  workload::FlowSpec spec;
  spec.n_views = GetParam();
  spec.propagation_cutoff = GetParam() / 2;
  const std::string source = workload::MakeFlowBlueprint(spec, "sweep");
  const std::string printed = FormatBlueprint(ParseBlueprint(source));
  EXPECT_EQ(printed, FormatBlueprint(ParseBlueprint(printed)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrinterFlowSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace damocles::blueprint
