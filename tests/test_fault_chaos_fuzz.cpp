// Chaos fuzz for the degraded-mode state machine: randomized fault
// schedules (injected WAL append/flush/fsync/roll failures, checkpoint
// ENOSPC, ring spills) over the crash-fuzz workload, 1- and 4-shard.
//
// Each seeded iteration first runs the workload fault-free and captures
// the end state. It then replays the identical plan on a fresh WAL
// directory while a seeded chaos schedule arms failpoints between
// steps. The invariants:
//
//  * no crash, no hang — every fault either heals within the bounded
//    retry budget or trips degraded read-only mode;
//  * while degraded, reads are still answered in-band (health, report,
//    query) and mutations are rejected with "degraded: ..." WITHOUT
//    being applied;
//  * after clearing the fault and healing (wal-reopen), retrying the
//    rejected step converges: the chaos run's end state equals the
//    fault-free run's end state exactly;
//  * the heal checkpoint is durable: a fresh server recovering from
//    the chaos directory reproduces the same end state (journal
//    multiset included — the heal re-mirrors rows the fail-soft sink
//    dropped).
//
// Faults are armed with bounded hit counts so every schedule drains;
// the probability draws are seeded so failures reproduce by seed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "engine/project_server.hpp"
#include "engine/wire_session.hpp"
#include "events/wal.hpp"
#include "metadb/persistence.hpp"

namespace damocles {
namespace {

using engine::ProjectServer;
using engine::ServerOptions;
using events::FsyncPolicy;
using metadb::Oid;

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

// Same schedule-invariant blueprint as the crash fuzz: constant-valued
// rules, so the threaded 4-shard variant converges to one state.
constexpr const char* kChaosBlueprint = R"(blueprint chaos_fuzz
view default
  when edit do edited = yes done
  when ckin do checked = yes done
endview
view hdl
  when edit do edited = yes done
  when ckin do checked = yes done
  when note do noted = yes done
endview
view relay
  link_from hdl propagates edit, ckin type derived
  when edit do post note down done
  when note do noted = yes done
  when ckin do checked = yes done
endview
view sink
  link_from relay propagates note, edit type derived
  link_from hdl propagates ckin type derived
  when note do noted = yes done
  when edit do edited = yes done
  when ckin do checked = yes done
endview
endblueprint)";

// A loosened variant for the policy-lifecycle steps: same views and
// constant-valued rules, fewer propagated events.
constexpr const char* kChaosBlueprintLoose = R"(blueprint chaos_fuzz
view default
  when edit do edited = yes done
  when ckin do checked = yes done
endview
view hdl
  when edit do edited = yes done
  when ckin do checked = yes done
  when note do noted = yes done
endview
view relay
  link_from hdl propagates edit type derived
  when edit do edited = yes done
  when note do noted = yes done
  when ckin do checked = yes done
endview
view sink
  link_from relay propagates note type derived
  link_from hdl propagates ckin type derived
  when note do noted = yes done
  when edit do edited = yes done
  when ckin do checked = yes done
endview
endblueprint)";

struct Step {
  enum Kind {
    kCheckIn,
    kLink,
    kEvent,
    kAdvance,
    kCheckpoint,
    kPolicyPropose,
    kPolicyValidate,
    kPolicyPromote,
    kPolicyRollback,
  } kind = kCheckIn;
  std::string block;
  std::string view;
  std::string content;
  Oid link_from;
  Oid link_to;
  std::string event;
  int version = 1;
  int64_t seconds = 0;
  uint64_t policy_id = 0;
  bool policy_loose = false;
};

/// Mirrors the PolicyStore lifecycle so the plan only emits legal
/// transitions — every policy step is applied (or rejected solely with
/// DegradedError) and logs exactly one WAL op. Version 1 is the
/// initializeBlueprint adoption.
struct PolicyModel {
  enum Status { kProposed, kValidated, kPromoted, kSuperseded, kRolledBack };
  uint64_t next_id = 2;
  std::vector<uint64_t> stack{1};
  std::map<uint64_t, Status> status{{1, kPromoted}};

  Step Propose() {
    Step step;
    step.kind = Step::kPolicyPropose;
    step.policy_id = next_id++;
    step.policy_loose = step.policy_id % 2 == 0;
    status[step.policy_id] = kProposed;
    return step;
  }

  std::vector<uint64_t> WithStatus(std::initializer_list<Status> wanted,
                                   uint64_t exclude) const {
    std::vector<uint64_t> out;
    for (const auto& [id, st] : status) {
      if (id == exclude) continue;
      for (const Status w : wanted) {
        if (st == w) {
          out.push_back(id);
          break;
        }
      }
    }
    return out;
  }

  /// Emits one random legal lifecycle step (falls back to propose).
  Step RandomStep(Rng& rng) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return Propose();
      case 1: {
        const std::vector<uint64_t> ids = WithStatus({kProposed}, 0);
        if (ids.empty()) return Propose();
        Step step;
        step.kind = Step::kPolicyValidate;
        step.policy_id = ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
        // Both blueprint variants validate cleanly.
        status[step.policy_id] = kValidated;
        return step;
      }
      case 2: {
        const std::vector<uint64_t> ids =
            WithStatus({kValidated, kSuperseded, kRolledBack}, stack.back());
        if (ids.empty()) return Propose();
        Step step;
        step.kind = Step::kPolicyPromote;
        step.policy_id = ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
        status[stack.back()] = kSuperseded;
        stack.push_back(step.policy_id);
        status[step.policy_id] = kPromoted;
        return step;
      }
      default: {
        if (stack.size() < 2) return Propose();
        Step step;
        step.kind = Step::kPolicyRollback;
        status[stack.back()] = kRolledBack;
        stack.pop_back();
        status[stack.back()] = kPromoted;
        return step;
      }
    }
  }
};

std::vector<Step> MakePlan(uint64_t seed) {
  Rng rng(seed);
  std::vector<Step> plan;
  const char* kViews[] = {"hdl", "relay", "sink", "sch"};
  const char* kEvents[] = {"edit", "note", "ckin"};
  const int blocks = static_cast<int>(rng.UniformInt(3, 6));

  std::map<std::pair<std::string, std::string>, int> versions;
  std::vector<Oid> oids;
  PolicyModel policy;

  const int steps = static_cast<int>(rng.UniformInt(20, 30));
  for (int i = 0; i < steps; ++i) {
    Step step;
    const double draw = oids.empty() ? 0.0 : rng.UniformDouble();
    if (draw < 0.30) {
      step.kind = Step::kCheckIn;
      step.block = "blk" + std::to_string(rng.UniformInt(0, blocks - 1));
      step.view = kViews[rng.UniformInt(0, 3)];
      const int version = ++versions[{step.block, step.view}];
      step.content = step.block + "/" + step.view + " v" +
                     std::to_string(version) + " seed" + std::to_string(seed);
      oids.push_back(Oid{step.block, step.view, version});
    } else if (draw < 0.45 && oids.size() >= 2) {
      step.kind = Step::kLink;
      step.link_from = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      step.link_to = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      if (step.link_from == step.link_to) continue;
    } else if (draw < 0.70) {
      step.kind = Step::kEvent;
      const Oid& target = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      step.block = target.block;
      step.view = target.view;
      step.version = target.version;
      step.event = kEvents[rng.UniformInt(0, 2)];
    } else if (draw < 0.78) {
      step.kind = Step::kAdvance;
      step.seconds = rng.UniformInt(1, 600);
    } else if (draw < 0.85) {
      step.kind = Step::kCheckpoint;
    } else {
      step = policy.RandomStep(rng);
    }
    plan.push_back(std::move(step));
  }
  return plan;
}

/// Applies one step. DegradedError propagates to the caller (the step
/// was rejected, not applied); checkpoint failures are swallowed like
/// an operator shrugging at a failed backup.
void DoStep(ProjectServer& server, const Step& step) {
  switch (step.kind) {
    case Step::kCheckIn:
      server.CheckIn(step.block, step.view, step.content, "chaos");
      break;
    case Step::kLink:
      try {
        server.RegisterLink(metadb::LinkKind::kDerive, step.link_from,
                            step.link_to);
      } catch (const DegradedError&) {
        throw;
      } catch (const Error&) {
        // Deterministically rejected in the fault-free run too.
      }
      break;
    case Step::kEvent: {
      events::EventMessage event;
      event.name = step.event;
      event.direction = events::Direction::kDown;
      event.target = Oid{step.block, step.view, step.version};
      event.user = "chaos";
      event.timestamp = server.clock().NowSeconds();
      server.Submit(std::move(event));
      break;
    }
    case Step::kAdvance:
      server.AdvanceClock(step.seconds);
      break;
    case Step::kCheckpoint:
      try {
        server.WalCheckpoint();
      } catch (const Error&) {
        // A faulted checkpoint leaves the previous manifest in charge.
      }
      break;
    // Policy lifecycle ops throw DegradedError only before mutating the
    // store (RequireWritable at entry), so the heal-and-retry loop
    // never double-applies them.
    case Step::kPolicyPropose:
      server.PolicyPropose(
          step.policy_loose ? kChaosBlueprintLoose : kChaosBlueprint, "chaos",
          "proposal " + std::to_string(step.policy_id));
      break;
    case Step::kPolicyValidate:
      server.PolicyValidate(step.policy_id);
      break;
    case Step::kPolicyPromote:
      server.PolicyPromote(step.policy_id);
      break;
    case Step::kPolicyRollback:
      server.PolicyRollback();
      break;
  }
}

struct Fingerprint {
  std::vector<std::string> journal;
  std::string db_text;
  std::string workspace_text;
  int64_t clock_seconds = 0;
  uint64_t epoch_ceiling = 0;
  std::string policy_text;      ///< Serialized policy commit chain.
  uint64_t policy_version = 0;  ///< Version the engines are bound to.
};

Fingerprint Capture(ProjectServer& server) {
  Fingerprint fp;
  if (server.is_sharded()) {
    fp.journal = server.sharded_engine()->JournalLines();
    fp.epoch_ceiling = server.sharded_engine()->epoch_ceiling();
  } else {
    const events::EventJournal& journal = server.engine().journal();
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      fp.journal.push_back(
          "[" + std::string(events::EventOriginName(record.event.origin)) +
          "] " + events::FormatEvent(record.event));
    }
  }
  std::sort(fp.journal.begin(), fp.journal.end());
  fp.db_text = metadb::SaveDatabaseString(server.database());
  fp.workspace_text = metadb::SaveWorkspaceText(server.workspace());
  fp.clock_seconds = server.clock().NowSeconds();
  fp.policy_text = server.policy_store().SerializeText();
  fp.policy_version = server.engine().policy_version();
  return fp;
}

ServerOptions MakeOptions(uint64_t seed, const std::string& wal_dir) {
  Rng rng(seed ^ 0xc0ffee);
  ServerOptions options;
  options.wal_dir = wal_dir;
  options.wal_segment_bytes = static_cast<size_t>(rng.UniformInt(256, 4096));
  const FsyncPolicy policies[] = {FsyncPolicy::kNone, FsyncPolicy::kBatch,
                                  FsyncPolicy::kEveryRecord};
  options.wal_fsync = policies[rng.UniformInt(0, 2)];
  // Small bounded retry so exhausted-budget (degraded) and healed-
  // within-budget paths both occur without slowing the suite.
  options.wal_retry.attempts = 2;
  options.wal_retry.initial = std::chrono::milliseconds(0);
  options.wal_retry.max = std::chrono::milliseconds(1);
  if (seed % 2 == 1) {
    options.num_shards = 4;
    options.deterministic_shards = (seed % 4 == 1);
  }
  return options;
}

/// Degradations observed across all seeds in this binary; the suite
/// asserts the schedules actually exercised the machine.
std::atomic<int> g_degradations{0};
std::atomic<int> g_injected_faults{0};

/// One step of the chaos schedule: maybe arm a failpoint. Bounded hit
/// counts guarantee the schedule drains.
void MaybeArmFault(Rng& chaos, uint64_t seed, bool sharded) {
  if (chaos.UniformDouble() >= 0.30) return;
  static const char* kNames[] = {
      "wal.append", "wal.flush",        "wal.fsync",
      "wal.roll",   "checkpoint.write", "checkpoint.manifest.rename",
  };
  const char* name = sharded && chaos.UniformDouble() < 0.15
                         ? "sharded.ring.spill"
                         : kNames[chaos.UniformInt(0, 5)];
  std::string config;
  switch (chaos.UniformInt(0, 4)) {
    case 0:
      config = "error,count=" + std::to_string(chaos.UniformInt(1, 3));
      break;
    case 1:
      config = "errno:ENOSPC,count=" + std::to_string(chaos.UniformInt(1, 2));
      break;
    case 2:
      config = "errno:EIO,prob=0.5,count=3,seed=" + std::to_string(seed);
      break;
    case 3:
      config = "short:" + std::to_string(chaos.UniformInt(1, 48)) + ",count=1";
      break;
    default:
      config = "delay:1,count=2";
      break;
  }
  common::Failpoints::Instance().Configure(name, config);
  g_injected_faults.fetch_add(1, std::memory_order_relaxed);
}

/// While degraded: reads must keep answering in-band, then clearing
/// the fault plus wal-reopen must restore writability.
void ProbeReadsAndHeal(ProjectServer& server, uint64_t seed) {
  g_degradations.fetch_add(1, std::memory_order_relaxed);
  engine::WireSession reads(server, "probe");
  const std::string health = reads.HandleLine("health");
  ASSERT_EQ(health.rfind("health degraded", 0), 0u)
      << "seed " << seed << ": " << health;
  for (const char* line : {"report", "query outofdate", "wal-status"}) {
    const std::string response = reads.HandleLine(line);
    ASSERT_TRUE(response.rfind("degraded:", 0) != 0 &&
                response.rfind("error:", 0) != 0)
        << "seed " << seed << ": read '" << line
        << "' not answered while degraded: " << response;
  }
  common::Failpoints::Instance().ClearAll();
  server.WalReopen();
  ASSERT_FALSE(server.degraded()) << "seed " << seed;
  const std::string healed = reads.HandleLine("health");
  ASSERT_EQ(healed.rfind("health ok", 0), 0u) << "seed " << seed;
}

void RunSeed(uint64_t seed) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() /
      ("damocles-chaos-" + std::to_string(::getpid()) + "-" +
       std::to_string(seed));
  const std::filesystem::path clean_dir = base.string() + "-clean";
  const std::filesystem::path chaos_dir = base.string() + "-chaos";
  std::filesystem::remove_all(clean_dir);
  std::filesystem::remove_all(chaos_dir);
  common::Failpoints::Instance().ClearAll();

  const std::vector<Step> plan = MakePlan(seed);

  // Fault-free reference run.
  Fingerprint expected;
  {
    auto server = std::make_unique<ProjectServer>(
        "chaos", MakeOptions(seed, clean_dir.string()));
    server->InitializeBlueprint(kChaosBlueprint);
    for (const Step& step : plan) DoStep(*server, step);
    server->Drain();
    expected = Capture(*server);
  }

  // Chaos run: same plan, fault schedule armed between steps. A step
  // rejected with DegradedError is retried after the heal — it was
  // not applied, so the retry cannot double-apply.
  Rng chaos(seed ^ 0x5eed);
  {
    auto server = std::make_unique<ProjectServer>(
        "chaos", MakeOptions(seed, chaos_dir.string()));
    server->InitializeBlueprint(kChaosBlueprint);
    for (const Step& step : plan) {
      MaybeArmFault(chaos, seed, server->is_sharded());
      for (int attempt = 0;; ++attempt) {
        ASSERT_LT(attempt, 5) << "seed " << seed << ": step keeps failing";
        try {
          DoStep(*server, step);
          break;
        } catch (const DegradedError&) {
          ProbeReadsAndHeal(*server, seed);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    common::Failpoints::Instance().ClearAll();
    if (server->degraded()) {
      ProbeReadsAndHeal(*server, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
    server->Drain();

    const Fingerprint actual = Capture(*server);
    ASSERT_EQ(actual.journal, expected.journal) << "seed " << seed;
    ASSERT_EQ(actual.db_text, expected.db_text) << "seed " << seed;
    ASSERT_EQ(actual.workspace_text, expected.workspace_text)
        << "seed " << seed;
    ASSERT_EQ(actual.clock_seconds, expected.clock_seconds)
        << "seed " << seed;
    ASSERT_EQ(actual.epoch_ceiling, expected.epoch_ceiling)
        << "seed " << seed;
    ASSERT_EQ(actual.policy_text, expected.policy_text) << "seed " << seed;
    ASSERT_EQ(actual.policy_version, expected.policy_version)
        << "seed " << seed;

    // Make the healed state durable, then prove it below.
    server->WalCheckpoint();
  }

  // Durability of the healed state: recover from the chaos directory
  // and compare again (journal included — the heal re-mirrors rows the
  // fail-soft sink dropped while the WAL was failing).
  {
    auto recovered = std::make_unique<ProjectServer>(
        "chaos", MakeOptions(seed, chaos_dir.string()));
    recovered->Drain();
    const Fingerprint actual = Capture(*recovered);
    ASSERT_EQ(actual.journal, expected.journal)
        << "seed " << seed << " (recovered)";
    ASSERT_EQ(actual.db_text, expected.db_text)
        << "seed " << seed << " (recovered)";
    ASSERT_EQ(actual.workspace_text, expected.workspace_text)
        << "seed " << seed << " (recovered)";
    ASSERT_EQ(actual.clock_seconds, expected.clock_seconds)
        << "seed " << seed << " (recovered)";
    ASSERT_EQ(actual.policy_text, expected.policy_text)
        << "seed " << seed << " (recovered)";
    ASSERT_EQ(actual.policy_version, expected.policy_version)
        << "seed " << seed << " (recovered)";
  }

  std::filesystem::remove_all(clean_dir);
  std::filesystem::remove_all(chaos_dir);
}

void RunSeedRange(uint64_t first_seed, uint64_t last_seed) {
  g_degradations.store(0);
  g_injected_faults.store(0);
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    RunSeed(seed);
    if (::testing::Test::HasFatalFailure()) {
      common::Failpoints::Instance().ClearAll();
      return;
    }
  }
  common::Failpoints::Instance().ClearAll();
  // The range must have actually exercised the fault machinery — a
  // silent no-op chaos schedule would pass everything vacuously. The
  // counters are checked per test because ctest runs each test in its
  // own process.
  EXPECT_GT(g_injected_faults.load(), 50);
  EXPECT_GT(g_degradations.load(), 0)
      << "no seed ever tripped degraded mode; the schedules are toothless";
}

// 3 × 44 = 132 seeded fault schedules. Even seeds run 1-shard, odd
// seeds 4-shard (deterministic and threaded alternating), matching the
// crash fuzz split.
TEST(FaultChaosFuzz, HealedStateEqualsFaultFreeSeeds0To43) {
  RunSeedRange(0, 43);
}

TEST(FaultChaosFuzz, HealedStateEqualsFaultFreeSeeds44To87) {
  RunSeedRange(44, 87);
}

TEST(FaultChaosFuzz, HealedStateEqualsFaultFreeSeeds88To131) {
  RunSeedRange(88, 131);
}

#else  // !DAMOCLES_FAILPOINTS_ENABLED

TEST(FaultChaosFuzz, SkippedWithoutFailpoints) {
  GTEST_SKIP() << "failpoints compiled out (DAMOCLES_FAILPOINTS=OFF)";
}

#endif  // DAMOCLES_FAILPOINTS_ENABLED

}  // namespace
}  // namespace damocles
