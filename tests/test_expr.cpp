#include "blueprint/expr.hpp"

#include <gtest/gtest.h>

#include <map>

#include "blueprint/parser.hpp"

namespace damocles::blueprint {
namespace {

VariableResolver MapResolver(std::map<std::string, std::string> values) {
  return [values = std::move(values)](std::string_view name) -> std::string {
    const auto it = values.find(std::string(name));
    return it == values.end() ? std::string() : it->second;
  };
}

/// Parses a let-expression through the full blueprint parser so the
/// tests exercise exactly the grammar users write.
Expr ParseExprVia(const std::string& expr_source) {
  const std::string source = "blueprint t\nview v\nlet x = " + expr_source +
                             "\nendview\nendblueprint\n";
  Blueprint bp = ParseBlueprint(source);
  return bp.views.at(0).assignments.at(0).expr.Clone();
}

TEST(Expr, LiteralEvaluation) {
  EXPECT_EQ(Expr::MakeLiteral("good").EvaluateString(MapResolver({})), "good");
  EXPECT_TRUE(Expr::MakeLiteral("true").EvaluateBool(MapResolver({})));
  EXPECT_FALSE(Expr::MakeLiteral("good").EvaluateBool(MapResolver({})));
}

TEST(Expr, VarEvaluation) {
  const Expr var = Expr::MakeVar("sim");
  EXPECT_EQ(var.EvaluateString(MapResolver({{"sim", "ok"}})), "ok");
  EXPECT_EQ(var.EvaluateString(MapResolver({})), "");
}

TEST(Expr, ThePaperContinuousAssignment) {
  // my_state = ($simulation == ok) and ($DRC == good)
  const Expr expr = ParseExprVia("($simulation == ok) and ($DRC == good)");
  EXPECT_TRUE(expr.EvaluateBool(
      MapResolver({{"simulation", "ok"}, {"DRC", "good"}})));
  EXPECT_FALSE(expr.EvaluateBool(
      MapResolver({{"simulation", "ok"}, {"DRC", "bad"}})));
  EXPECT_FALSE(expr.EvaluateBool(MapResolver({})));
}

TEST(Expr, TheEdtcStateAssignment) {
  const Expr expr = ParseExprVia(
      "($nl_sim_res == good) and ($lvs_res == is_equiv) and "
      "($uptodate == true)");
  EXPECT_TRUE(expr.EvaluateBool(MapResolver({{"nl_sim_res", "good"},
                                             {"lvs_res", "is_equiv"},
                                             {"uptodate", "true"}})));
  EXPECT_FALSE(expr.EvaluateBool(MapResolver({{"nl_sim_res", "good"},
                                              {"lvs_res", "is_equiv"},
                                              {"uptodate", "false"}})));
}

TEST(Expr, NotEqualComparison) {
  const Expr expr = ParseExprVia("$result != bad");
  EXPECT_TRUE(expr.EvaluateBool(MapResolver({{"result", "good"}})));
  EXPECT_FALSE(expr.EvaluateBool(MapResolver({{"result", "bad"}})));
}

TEST(Expr, OrAndNotCombinators) {
  const Expr expr = ParseExprVia("(not ($a == x)) or ($b == y)");
  EXPECT_TRUE(expr.EvaluateBool(MapResolver({{"a", "z"}, {"b", "n"}})));
  EXPECT_TRUE(expr.EvaluateBool(MapResolver({{"a", "x"}, {"b", "y"}})));
  EXPECT_FALSE(expr.EvaluateBool(MapResolver({{"a", "x"}, {"b", "n"}})));
}

TEST(Expr, PrecedenceAndBindsTighterThanOr) {
  // a or b and c parses as a or (b and c).
  const Expr expr = ParseExprVia("($a == 1) or ($b == 1) and ($c == 1)");
  EXPECT_TRUE(
      expr.EvaluateBool(MapResolver({{"a", "1"}, {"b", "0"}, {"c", "0"}})));
  EXPECT_FALSE(
      expr.EvaluateBool(MapResolver({{"a", "0"}, {"b", "1"}, {"c", "0"}})));
  EXPECT_TRUE(
      expr.EvaluateBool(MapResolver({{"a", "0"}, {"b", "1"}, {"c", "1"}})));
}

TEST(Expr, BareVarIsTruthyOnlyWhenTrue) {
  const Expr expr = ParseExprVia("$uptodate");
  EXPECT_TRUE(expr.EvaluateBool(MapResolver({{"uptodate", "true"}})));
  EXPECT_FALSE(expr.EvaluateBool(MapResolver({{"uptodate", "yes"}})));
}

TEST(Expr, StringLiteralComparison) {
  const Expr expr = ParseExprVia("$msg == \"4 errors\"");
  EXPECT_TRUE(expr.EvaluateBool(MapResolver({{"msg", "4 errors"}})));
}

TEST(Expr, CloneIsDeepAndIndependent) {
  const Expr original = ParseExprVia("($a == x) and (not ($b == y))");
  const Expr clone = original.Clone();
  const auto resolver = MapResolver({{"a", "x"}, {"b", "z"}});
  EXPECT_EQ(original.EvaluateBool(resolver), clone.EvaluateBool(resolver));
  EXPECT_EQ(original.ToSource(), clone.ToSource());
}

TEST(Expr, CollectVariables) {
  const Expr expr = ParseExprVia("($a == x) and ($b == y) or (not $c)");
  std::vector<std::string> names;
  expr.CollectVariables(names);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(Expr, ToSourceReparses) {
  const Expr expr = ParseExprVia("($a == x) and (not ($b != \"two words\"))");
  const Expr reparsed = ParseExprVia(expr.ToSource());
  const auto resolver = MapResolver({{"a", "x"}, {"b", "two words"}});
  EXPECT_EQ(expr.EvaluateBool(resolver), reparsed.EvaluateBool(resolver));
  EXPECT_EQ(expr.ToSource(), reparsed.ToSource());
}

/// Truth-table sweep for the binary combinators.
struct TruthCase {
  const char* source;
  const char* a;
  const char* b;
  bool expected;
};

class ExprTruthTable : public ::testing::TestWithParam<TruthCase> {};

TEST_P(ExprTruthTable, Evaluates) {
  const TruthCase& c = GetParam();
  const Expr expr = ParseExprVia(c.source);
  EXPECT_EQ(expr.EvaluateBool(MapResolver({{"a", c.a}, {"b", c.b}})),
            c.expected)
      << c.source << " with a=" << c.a << " b=" << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExprTruthTable,
    ::testing::Values(
        TruthCase{"($a == 1) and ($b == 1)", "1", "1", true},
        TruthCase{"($a == 1) and ($b == 1)", "1", "0", false},
        TruthCase{"($a == 1) and ($b == 1)", "0", "1", false},
        TruthCase{"($a == 1) or ($b == 1)", "0", "1", true},
        TruthCase{"($a == 1) or ($b == 1)", "0", "0", false},
        TruthCase{"not ($a == 1)", "1", "", false},
        TruthCase{"not ($a == 1)", "0", "", true},
        TruthCase{"($a != 1) and ($b != 1)", "0", "2", true},
        TruthCase{"($a != 1) and ($b != 1)", "1", "2", false}));

}  // namespace
}  // namespace damocles::blueprint
