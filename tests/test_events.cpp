#include <gtest/gtest.h>

#include "common/error.hpp"
#include "events/event.hpp"
#include "events/event_queue.hpp"
#include "events/journal.hpp"
#include "events/wire.hpp"

namespace damocles::events {
namespace {

using metadb::Oid;

// --- Wire codec ---------------------------------------------------------------

TEST(Wire, ParsesThePaperExample) {
  // Paper §3.1: postEvent ckin up reg,verilog,4 "logic sim passed"
  const EventMessage event =
      ParseWireEvent("postEvent ckin up reg,verilog,4 \"logic sim passed\"");
  EXPECT_EQ(event.name, "ckin");
  EXPECT_EQ(event.direction, Direction::kUp);
  EXPECT_EQ(event.target, (Oid{"reg", "verilog", 4}));
  EXPECT_EQ(event.arg, "logic sim passed");
  EXPECT_EQ(event.origin, EventOrigin::kExternal);
}

TEST(Wire, ParsesBareWordArgument) {
  const EventMessage event =
      ParseWireEvent("postEvent hdl_sim up cpu,HDL_model,2 good");
  EXPECT_EQ(event.arg, "good");
}

TEST(Wire, ParsesWithoutArgument) {
  const EventMessage event =
      ParseWireEvent("postEvent outofdate down cpu,schematic,1");
  EXPECT_EQ(event.arg, "");
  EXPECT_TRUE(event.extra_args.empty());
}

TEST(Wire, ParsesExtraArguments) {
  const EventMessage event = ParseWireEvent(
      "postEvent lvs up alu,layout,2 \"is_equiv\" \"runtime 42s\" third");
  EXPECT_EQ(event.arg, "is_equiv");
  ASSERT_EQ(event.extra_args.size(), 2u);
  EXPECT_EQ(event.extra_args[0], "runtime 42s");
  EXPECT_EQ(event.extra_args[1], "third");
}

TEST(Wire, FormatParsesBack) {
  EventMessage event;
  event.name = "drc";
  event.direction = Direction::kDown;
  event.target = Oid{"alu", "layout", 7};
  event.arg = "good";
  event.extra_args = {"detail 1"};
  const EventMessage parsed = ParseWireEvent(FormatWireEvent(event));
  EXPECT_EQ(parsed.name, event.name);
  EXPECT_EQ(parsed.direction, event.direction);
  EXPECT_EQ(parsed.target, event.target);
  EXPECT_EQ(parsed.arg, event.arg);
  EXPECT_EQ(parsed.extra_args, event.extra_args);
}

TEST(Wire, RejectsWrongCommand) {
  EXPECT_THROW(ParseWireEvent("sendEvent ckin up a,b,1"), WireFormatError);
  EXPECT_THROW(ParseWireEvent(""), WireFormatError);
}

TEST(Wire, RejectsBadDirection) {
  EXPECT_THROW(ParseWireEvent("postEvent ckin sideways a,b,1"),
               WireFormatError);
}

TEST(Wire, RejectsMissingFields) {
  EXPECT_THROW(ParseWireEvent("postEvent"), WireFormatError);
  EXPECT_THROW(ParseWireEvent("postEvent ckin"), WireFormatError);
  EXPECT_THROW(ParseWireEvent("postEvent ckin up"), WireFormatError);
}

TEST(Wire, RejectsMalformedEventName) {
  EXPECT_THROW(ParseWireEvent("postEvent 4bad up a,b,1"), WireFormatError);
}

TEST(Wire, RejectsMalformedOid) {
  EXPECT_THROW(ParseWireEvent("postEvent ckin up a,b"), WireFormatError);
  EXPECT_THROW(ParseWireEvent("postEvent ckin up a,b,x"), WireFormatError);
}

TEST(Wire, RejectsUnterminatedQuote) {
  EXPECT_THROW(ParseWireEvent("postEvent ckin up a,b,1 \"oops"),
               WireFormatError);
}

TEST(Event, FormatIsReadable) {
  EventMessage event;
  event.name = "ckin";
  event.direction = Direction::kUp;
  event.target = Oid{"reg", "verilog", 4};
  event.arg = "logic sim passed";
  EXPECT_EQ(FormatEvent(event),
            "ckin up <reg.verilog.4> \"logic sim passed\"");
}

// --- Queue ------------------------------------------------------------------------

EventMessage MakeEvent(const std::string& name) {
  EventMessage event;
  event.name = name;
  event.target = Oid{"cpu", "hdl", 1};
  return event;
}

TEST(EventQueue, StrictFifo) {
  EventQueue queue;
  queue.Push(MakeEvent("first"));
  queue.Push(MakeEvent("second"));
  queue.Push(MakeEvent("third"));
  EXPECT_EQ(queue.Pop()->name, "first");
  EXPECT_EQ(queue.Pop()->name, "second");
  EXPECT_EQ(queue.Pop()->name, "third");
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(EventQueue, PeekDoesNotConsume) {
  EventQueue queue;
  EXPECT_EQ(queue.Peek(), nullptr);
  queue.Push(MakeEvent("only"));
  ASSERT_NE(queue.Peek(), nullptr);
  EXPECT_EQ(queue.Peek()->name, "only");
  EXPECT_EQ(queue.Depth(), 1u);
}

TEST(EventQueue, StatsTrackTraffic) {
  EventQueue queue;
  queue.Push(MakeEvent("a"));
  queue.Push(MakeEvent("b"));
  queue.Pop();
  queue.Push(MakeEvent("c"));
  const QueueStats& stats = queue.Stats();
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(stats.dequeued, 1u);
  EXPECT_EQ(stats.high_water_mark, 2u);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue queue;
  queue.Push(MakeEvent("a"));
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Stats().enqueued, 1u);
}

// --- Journal --------------------------------------------------------------------------

TEST(EventJournal, RecordsInOrderWithSequence) {
  EventJournal journal;
  journal.Record(MakeEvent("a"));
  journal.Record(MakeEvent("b"));
  ASSERT_EQ(journal.Size(), 2u);
  EXPECT_EQ(journal.At(0).sequence, 0u);
  EXPECT_EQ(journal.At(1).sequence, 1u);
  EXPECT_EQ(journal.At(1).event.name, "b");
}

TEST(EventJournal, ExternalTraceFiltersDerivedEvents) {
  EventJournal journal;
  EventMessage external = MakeEvent("ckin");
  external.origin = EventOrigin::kExternal;
  EventMessage rule = MakeEvent("outofdate");
  rule.origin = EventOrigin::kRule;
  EventMessage propagated = MakeEvent("outofdate");
  propagated.origin = EventOrigin::kPropagated;
  journal.Record(external);
  journal.Record(rule);
  journal.Record(propagated);

  const auto trace = journal.ExternalTrace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].name, "ckin");
}

TEST(EventJournal, DumpMentionsOriginAndEvent) {
  EventJournal journal;
  EventMessage event = MakeEvent("ckin");
  event.origin = EventOrigin::kExternal;
  journal.Record(event);
  const std::string dump = journal.Dump();
  EXPECT_NE(dump.find("[external]"), std::string::npos);
  EXPECT_NE(dump.find("ckin"), std::string::npos);
}

TEST(EventJournal, ClearEmpties) {
  EventJournal journal;
  journal.Record(MakeEvent("a"));
  journal.Clear();
  EXPECT_TRUE(journal.Empty());
}

/// Recording the same names again must not grow the side string table:
/// the hot path is interned, not copied.
TEST(EventJournal, RepeatedRecordsShareSideTableStrings) {
  EventJournal journal;
  EventMessage event = MakeEvent("ckin");
  event.extra_args = {"warn", "fatal"};
  journal.Record(event);
  const size_t strings_after_first = journal.strings().size();
  for (int i = 0; i < 100; ++i) journal.Record(event);
  EXPECT_EQ(journal.strings().size(), strings_after_first);
  EXPECT_EQ(journal.At(100).event.extra_args, event.extra_args);
  EXPECT_EQ(journal.At(100).event.name, "ckin");
}

/// RecordPropagated journals the shared wave payload with a
/// per-delivery target, forcing the propagated origin.
TEST(EventJournal, RecordPropagatedRewritesTargetAndOrigin) {
  EventJournal journal;
  EventMessage event = MakeEvent("edit");
  event.origin = EventOrigin::kExternal;
  const Oid target{"spoke", "derived", 3};
  journal.RecordPropagated(event, target);
  const JournalRecord record = journal.At(0);
  EXPECT_EQ(record.event.origin, EventOrigin::kPropagated);
  EXPECT_EQ(record.event.target, target);
  EXPECT_EQ(record.event.name, "edit");
  EXPECT_EQ(record.event.arg, event.arg);
}

TEST(EventJournal, AtThrowsOutOfRange) {
  EventJournal journal;
  EXPECT_THROW(journal.At(0), NotFoundError);
}

}  // namespace
}  // namespace damocles::events
