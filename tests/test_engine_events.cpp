// Run-time engine event processing: phases, propagation, posts.
#include <gtest/gtest.h>

#include "blueprint/parser.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "engine/run_time_engine.hpp"

namespace damocles::engine {
namespace {

using events::Direction;
using events::EventMessage;
using metadb::LinkKind;
using metadb::MetaDatabase;
using metadb::Oid;
using metadb::OidId;

class EngineEventTest : public ::testing::Test {
 protected:
  EngineEventTest() : engine_(db_, clock_) {}

  void Load(const std::string& source) {
    engine_.LoadBlueprint(blueprint::ParseBlueprint(source));
  }

  EventMessage Event(const std::string& name, OidId target,
                     Direction direction = Direction::kDown,
                     const std::string& arg = "") {
    EventMessage event;
    event.name = name;
    event.direction = direction;
    event.target = db_.GetObject(target).oid;
    event.arg = arg;
    event.user = "tester";
    return event;
  }

  std::string Prop(OidId id, const std::string& name) {
    const std::string* value = db_.GetProperty(id, name);
    return value == nullptr ? std::string("<absent>") : *value;
  }

  MetaDatabase db_;
  SimClock clock_;
  RunTimeEngine engine_;
};

// A stub executor recording invocations and optionally posting events.
class RecordingExecutor : public ScriptExecutor {
 public:
  int Execute(const ExecRequest& request) override {
    requests.push_back(request);
    return exit_status;
  }
  std::vector<ExecRequest> requests;
  int exit_status = 0;
};

TEST_F(EngineEventTest, AssignActionWritesProperty) {
  Load(R"(blueprint t
          view v
            property sim_result default bad
            when hdl_sim do sim_result = $arg done
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("cpu", "v", "u");
  engine_.PostEvent(Event("hdl_sim", id, Direction::kUp, "good"));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "sim_result"), "good");
}

TEST_F(EngineEventTest, AssignSeesBuiltinVariables) {
  Load(R"(blueprint t
          view v
            property stamp default none
            when tag do stamp = "$user @ $date on $oid ($OID) ev=$event" done
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("cpu", "v", "u");
  clock_.Advance(3661);
  engine_.PostEvent(Event("tag", id, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "stamp"),
            "tester @ day 0 01:01:01 on cpu,v,1 (<cpu.v.1>) ev=tag");
}

TEST_F(EngineEventTest, AssignChainSeesEarlierWrites) {
  Load(R"(blueprint t
          view v
            property a default 0
            property b default 0
            when ev do a = one; b = "$a-then-b" done
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("x", "v", "u");
  engine_.PostEvent(Event("ev", id));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "b"), "one-then-b");
}

TEST_F(EngineEventTest, ContinuousAssignmentReevaluatedAfterAssigns) {
  Load(R"(blueprint t
          view v
            property r default bad
            let state = ($r == good)
            when result do r = $arg done
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("x", "v", "u");
  EXPECT_EQ(Prop(id, "state"), "false");
  engine_.PostEvent(Event("result", id, Direction::kUp, "good"));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "state"), "true");
  engine_.PostEvent(Event("result", id, Direction::kUp, "3 errors"));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "state"), "false");
}

TEST_F(EngineEventTest, ExecRunsRegisteredScripts) {
  Load(R"(blueprint t
          view schematic
            when ckin do exec netlister "$oid" done
          endview
          endblueprint)");
  RecordingExecutor executor;
  engine_.SetScriptExecutor(&executor);
  const OidId id = engine_.OnCreateObject("cpu", "schematic", "u");
  engine_.PostEvent(Event("ckin", id, Direction::kUp));
  engine_.ProcessAll();

  ASSERT_EQ(executor.requests.size(), 1u);
  EXPECT_EQ(executor.requests[0].script, "netlister");
  ASSERT_EQ(executor.requests[0].args.size(), 1u);
  EXPECT_EQ(executor.requests[0].args[0], "cpu,schematic,1");
  EXPECT_EQ(executor.requests[0].event, "ckin");
  EXPECT_EQ(engine_.stats().exec_actions, 1u);
}

TEST_F(EngineEventTest, ExecWithoutExecutorIsCountedButSkipped) {
  Load(R"(blueprint t
          view v
            when ev do exec ghost.sh done
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("x", "v", "u");
  engine_.PostEvent(Event("ev", id));
  EXPECT_NO_THROW(engine_.ProcessAll());
  EXPECT_EQ(engine_.stats().exec_actions, 1u);
}

TEST_F(EngineEventTest, ScriptsDispatchAfterTheWholeWave) {
  // Wrapper scripts are launched in phase 3 but their effects are
  // asynchronous: dispatch happens after the wave has fully propagated.
  Load(R"(blueprint t
          view a
            when ev do exec probe done
          endview
          view b
            property flag default no
            link_from a propagates ev type derived
            when ev do flag = yes done
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  engine_.OnCreateLink(LinkKind::kDerive, a, b);

  // The probe captures b.flag at dispatch time: if scripts ran inline
  // (old behaviour) it would still read "no".
  class Probe : public ScriptExecutor {
   public:
    Probe(metadb::MetaDatabase& db, OidId b) : db_(db), b_(b) {}
    int Execute(const ExecRequest&) override {
      observed = *db_.GetProperty(b_, "flag");
      return 0;
    }
    std::string observed;

   private:
    metadb::MetaDatabase& db_;
    OidId b_;
  };
  Probe probe(db_, b);
  engine_.SetScriptExecutor(&probe);

  engine_.PostEvent(Event("ev", a, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(probe.observed, "yes");
}

TEST_F(EngineEventTest, RetemplateLinksFollowsNewBlueprint) {
  Load(R"(blueprint strict
          view b
            link_from a propagates outofdate type derived move
          endview
          view a
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  const auto link = engine_.OnCreateLink(LinkKind::kDerive, a, b);
  EXPECT_TRUE(db_.GetLink(link).Propagates("outofdate"));

  Load(R"(blueprint loose
          view b
            link_from a propagates nothing type derived move
          endview
          view a
          endview
          endblueprint)");
  EXPECT_EQ(engine_.RetemplateLinks(), 1u);
  EXPECT_FALSE(db_.GetLink(link).Propagates("outofdate"));
  EXPECT_TRUE(db_.GetLink(link).Propagates("nothing"));
  EXPECT_EQ(db_.GetLink(link).properties.at("PROPAGATE"), "nothing");
  // Idempotent: a second pass touches nothing.
  EXPECT_EQ(engine_.RetemplateLinks(), 0u);
}

TEST_F(EngineEventTest, NotifyReachesSink) {
  Load(R"(blueprint t
          view v
            when ckin do notify "$owner: Your oid $OID has been modified" done
          endview
          endblueprint)");
  std::vector<Notification> notifications;
  engine_.SetNotificationSink(
      [&](const Notification& n) { notifications.push_back(n); });
  const OidId id = engine_.OnCreateObject("cpu", "v", "alice");
  db_.SetProperty(id, "owner", "alice");
  engine_.PostEvent(Event("ckin", id, Direction::kUp));
  engine_.ProcessAll();

  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].message,
            "alice: Your oid <cpu.v.1> has been modified");
  EXPECT_EQ(notifications[0].event, "ckin");
}

TEST_F(EngineEventTest, OwnerFallsBackToCreator) {
  Load(R"(blueprint t
          view v
            when ping do notify "$owner" done
          endview
          endblueprint)");
  std::vector<Notification> notifications;
  engine_.SetNotificationSink(
      [&](const Notification& n) { notifications.push_back(n); });
  const OidId id = engine_.OnCreateObject("cpu", "v", "creator_carl");
  engine_.PostEvent(Event("ping", id));
  engine_.ProcessAll();
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].message, "creator_carl");
}

TEST_F(EngineEventTest, PropagationFollowsDirectionDown) {
  Load(R"(blueprint t
          view default
            property uptodate default true
            when outofdate do uptodate = false done
          endview
          view b
            link_from a propagates outofdate type derived
          endview
          view a
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  engine_.OnCreateLink(LinkKind::kDerive, a, b);

  engine_.PostEvent(Event("outofdate", a, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(a, "uptodate"), "false");  // Target runs rules itself.
  EXPECT_EQ(Prop(b, "uptodate"), "false");  // Received by propagation.
  EXPECT_EQ(engine_.stats().propagated_deliveries, 1u);
}

TEST_F(EngineEventTest, PropagationDoesNotTravelAgainstDirection) {
  Load(R"(blueprint t
          view default
            property uptodate default true
            when outofdate do uptodate = false done
          endview
          view b
            link_from a propagates outofdate type derived
          endview
          view a
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  engine_.OnCreateLink(LinkKind::kDerive, a, b);

  // Down from b: the a->b link is an in-link of b; nothing downstream.
  engine_.PostEvent(Event("outofdate", b, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(a, "uptodate"), "true");
  EXPECT_EQ(Prop(b, "uptodate"), "false");

  // Up from b reaches a.
  engine_.PostEvent(Event("outofdate", b, Direction::kUp));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(a, "uptodate"), "false");
}

TEST_F(EngineEventTest, PropagationFilteredByPropagateList) {
  Load(R"(blueprint t
          view default
            property seen default no
            when gossip do seen = yes done
          endview
          view b
            link_from a propagates othernews type derived
          endview
          view a
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  engine_.OnCreateLink(LinkKind::kDerive, a, b);

  engine_.PostEvent(Event("gossip", a, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(a, "seen"), "yes");
  EXPECT_EQ(Prop(b, "seen"), "no");  // Link does not carry 'gossip'.
}

TEST_F(EngineEventTest, PropagationTraversesChains) {
  Load(R"(blueprint t
          view default
            property uptodate default true
            when outofdate do uptodate = false done
          endview
          view v1
            link_from v0 propagates outofdate type derived
          endview
          view v2
            link_from v1 propagates outofdate type derived
          endview
          view v0
          endview
          endblueprint)");
  const OidId v0 = engine_.OnCreateObject("x", "v0", "u");
  const OidId v1 = engine_.OnCreateObject("x", "v1", "u");
  const OidId v2 = engine_.OnCreateObject("x", "v2", "u");
  engine_.OnCreateLink(LinkKind::kDerive, v0, v1);
  engine_.OnCreateLink(LinkKind::kDerive, v1, v2);

  engine_.PostEvent(Event("outofdate", v0, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(v2, "uptodate"), "false");
  EXPECT_EQ(engine_.stats().propagated_deliveries, 2u);
  EXPECT_EQ(engine_.stats().max_wave_extent, 3u);
}

TEST_F(EngineEventTest, CyclicGraphsTerminate) {
  Load(R"(blueprint t
          view default
            property hits default none
            when loop do hits = yes done
          endview
          view r
            use_link propagates loop
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("a", "r", "u");
  const OidId b = engine_.OnCreateObject("b", "r", "u");
  const OidId c = engine_.OnCreateObject("c", "r", "u");
  engine_.OnCreateLink(LinkKind::kUse, a, b);
  engine_.OnCreateLink(LinkKind::kUse, b, c);
  engine_.OnCreateLink(LinkKind::kUse, c, a);  // Cycle.

  engine_.PostEvent(Event("loop", a, Direction::kDown));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(a, "hits"), "yes");
  EXPECT_EQ(Prop(b, "hits"), "yes");
  EXPECT_EQ(Prop(c, "hits"), "yes");
  // Each OID delivered exactly once: 2 propagated + 1 origin.
  EXPECT_EQ(engine_.stats().propagated_deliveries, 2u);
  EXPECT_EQ(engine_.stats().waves_truncated, 0u);
}

TEST_F(EngineEventTest, WaveTruncationGuard) {
  EngineOptions options;
  options.max_wave_deliveries = 2;
  RunTimeEngine small(db_, clock_, options);
  small.LoadBlueprint(blueprint::ParseBlueprint(R"(
      blueprint t
      view r
        use_link propagates flood
      endview
      endblueprint)"));
  const OidId a = small.OnCreateObject("a", "r", "u");
  const OidId b = small.OnCreateObject("b", "r", "u");
  const OidId c = small.OnCreateObject("c", "r", "u");
  const OidId d = small.OnCreateObject("d", "r", "u");
  small.OnCreateLink(LinkKind::kUse, a, b);
  small.OnCreateLink(LinkKind::kUse, b, c);
  small.OnCreateLink(LinkKind::kUse, c, d);

  EventMessage event;
  event.name = "flood";
  event.direction = Direction::kDown;
  event.target = db_.GetObject(a).oid;
  small.PostEvent(event);
  small.ProcessAll();
  EXPECT_EQ(small.stats().waves_truncated, 1u);
}

TEST_F(EngineEventTest, DirectionPostStartsSubWaveFromCurrentOid) {
  // The paper's central pattern: ckin posts outofdate down.
  Load(R"(blueprint t
          view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
          endview
          view derived_view
            link_from golden propagates outofdate type derived
          endview
          view golden
          endview
          endblueprint)");
  const OidId golden = engine_.OnCreateObject("x", "golden", "u");
  const OidId derived = engine_.OnCreateObject("x", "derived_view", "u");
  engine_.OnCreateLink(LinkKind::kDerive, golden, derived);

  engine_.PostEvent(Event("ckin", golden, Direction::kUp));
  engine_.ProcessAll();
  // The origin keeps uptodate=true: the sub-wave's rules run at the
  // neighbours only, not at the posting OID.
  EXPECT_EQ(Prop(golden, "uptodate"), "true");
  EXPECT_EQ(Prop(derived, "uptodate"), "false");
}

TEST_F(EngineEventTest, PostToViewGoesThroughQueue) {
  Load(R"(blueprint t
          view a
            when ckin do post refresh down to c done
          endview
          view b
            link_from a propagates nothing type derived
          endview
          view c
            property refreshed default no
            link_from b propagates nothing type derived
            when refresh do refreshed = yes done
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  const OidId c = engine_.OnCreateObject("x", "c", "u");
  engine_.OnCreateLink(LinkKind::kDerive, a, b);
  engine_.OnCreateLink(LinkKind::kDerive, b, c);

  engine_.PostEvent(Event("ckin", a, Direction::kUp));
  engine_.ProcessAll();
  // Delivered to the nearest OID of view c in the down direction, two
  // hops away, even though the links propagate nothing.
  EXPECT_EQ(Prop(c, "refreshed"), "yes");
  EXPECT_EQ(engine_.stats().rule_posted_events, 1u);
}

TEST_F(EngineEventTest, PostToViewMissIsCounted) {
  Load(R"(blueprint t
          view a
            when ckin do post refresh down to missing_view done
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  engine_.PostEvent(Event("ckin", a, Direction::kUp));
  engine_.ProcessAll();
  EXPECT_EQ(engine_.stats().post_to_misses, 1u);
}

TEST_F(EngineEventTest, FifoOrderingAcrossPostedEvents) {
  Load(R"(blueprint t
          view v
            property log default empty
            when first do log = "$log|first"; post second down to v done
            when second do log = "$log|second" done
            when third do log = "$log|third" done
          endview
          view v2
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("x", "v", "u");
  const OidId other = engine_.OnCreateObject("y", "v", "u");
  engine_.OnCreateLink(LinkKind::kDerive, id, other);

  engine_.PostEvent(Event("first", id));
  engine_.PostEvent(Event("third", id));
  engine_.ProcessAll();
  // 'second' (posted during 'first') queues behind the already queued
  // 'third' — strict FIFO, paper §3.1.
  EXPECT_EQ(Prop(id, "log"), "empty|first|third");
  EXPECT_EQ(Prop(other, "log"), "empty|second");
}

TEST_F(EngineEventTest, DanglingEventsCountedOrThrow) {
  Load("blueprint t view v endview endblueprint");
  EventMessage ghost;
  ghost.name = "ev";
  ghost.target = Oid{"no", "such", 1};
  engine_.PostEvent(ghost);
  engine_.ProcessAll();
  EXPECT_EQ(engine_.stats().dangling_events, 1u);

  EngineOptions strict;
  strict.strict_targets = true;
  RunTimeEngine strict_engine(db_, clock_, strict);
  strict_engine.LoadBlueprint(
      blueprint::ParseBlueprint("blueprint t view v endview endblueprint"));
  strict_engine.PostEvent(ghost);
  EXPECT_THROW(strict_engine.ProcessAll(), NotFoundError);
}

TEST_F(EngineEventTest, EventsWithoutBlueprintJustJournal) {
  const OidId id = db_.CreateNextVersion("x", "v", "u", 0);
  EventMessage event;
  event.name = "ev";
  event.target = db_.GetObject(id).oid;
  engine_.PostEvent(event);
  EXPECT_NO_THROW(engine_.ProcessAll());
  EXPECT_EQ(engine_.journal().Size(), 1u);
}

TEST_F(EngineEventTest, ReloadingBlueprintChangesRules) {
  Load(R"(blueprint strict
          view v
            property hits default 0
            when ev do hits = strict done
          endview
          endblueprint)");
  const OidId id = engine_.OnCreateObject("x", "v", "u");
  engine_.PostEvent(Event("ev", id));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "hits"), "strict");

  Load(R"(blueprint loose
          view v
            property hits default 0
            when ev do hits = loose done
          endview
          endblueprint)");
  engine_.PostEvent(Event("ev", id));
  engine_.ProcessAll();
  EXPECT_EQ(Prop(id, "hits"), "loose");
  EXPECT_EQ(engine_.Current().name, "loose");
}

TEST_F(EngineEventTest, JournalRecordsWholeWave) {
  Load(R"(blueprint t
          view default
            when outofdate do uptodate = false done
          endview
          view b
            link_from a propagates outofdate type derived
          endview
          view a
          endview
          endblueprint)");
  const OidId a = engine_.OnCreateObject("x", "a", "u");
  const OidId b = engine_.OnCreateObject("x", "b", "u");
  engine_.OnCreateLink(LinkKind::kDerive, a, b);
  engine_.PostEvent(Event("outofdate", a, Direction::kDown));
  engine_.ProcessAll();
  // One queue record + one propagated-delivery record.
  EXPECT_EQ(engine_.journal().Size(), 2u);
  EXPECT_EQ(engine_.journal().At(1).event.origin,
            events::EventOrigin::kPropagated);
}

}  // namespace
}  // namespace damocles::engine
