#include "blueprint/validator.hpp"

#include <gtest/gtest.h>

#include "blueprint/parser.hpp"
#include "workload/edtc.hpp"

namespace damocles::blueprint {
namespace {

ValidationReport Validate(const std::string& source) {
  return ValidateBlueprint(ParseBlueprint(source));
}

TEST(Validator, CleanBlueprintHasNoDiagnostics) {
  const auto report = Validate(R"(
      blueprint clean
      view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
      endview
      view a
      endview
      view b
        link_from a propagates outofdate type derived
      endview
      endblueprint)");
  EXPECT_TRUE(report.diagnostics.empty())
      << FormatValidationReport(report);
}

TEST(Validator, TheEdtcBlueprintIsClean) {
  const auto report =
      ValidateBlueprint(ParseBlueprint(workload::EdtcBlueprintText()));
  // The paper's own flow has one known oddity: the layout posts lvs with
  // an argument that no rule on the schematic consumes — every other
  // check must be clean.
  for (const Diagnostic& diagnostic : report.diagnostics) {
    EXPECT_EQ(diagnostic.code, "unread-event")
        << FormatValidationReport(report);
  }
  EXPECT_FALSE(report.HasErrors());
}

TEST(Validator, UnknownLinkViewIsAnError) {
  const auto report = Validate(R"(
      blueprint t
      view b
        link_from ghost propagates ev type derived
        when ev do x = y done
      endview
      endblueprint)");
  EXPECT_TRUE(report.HasErrors());
  ASSERT_EQ(report.WithCode("unknown-link-view").size(), 1u);
  EXPECT_EQ(report.WithCode("unknown-link-view")[0].view, "b");
}

TEST(Validator, SelfLinkIsAnError) {
  const auto report = Validate(R"(
      blueprint t
      view b
        link_from b propagates ev type derived
        when ev do x = y done
      endview
      endblueprint)");
  EXPECT_EQ(report.WithCode("self-link").size(), 1u);
}

TEST(Validator, UndeliveredPostIsAWarning) {
  const auto report = Validate(R"(
      blueprint t
      view a
        when ckin do post nowhere down done
      endview
      endblueprint)");
  ASSERT_EQ(report.WithCode("undelivered-post").size(), 1u);
  EXPECT_FALSE(report.HasErrors());
}

TEST(Validator, PostToDeclaredViewNeedsNoLink) {
  // 'post ... to <view>' is a direct send; it must NOT trigger the
  // undelivered-post warning.
  const auto report = Validate(R"(
      blueprint t
      view a
        when ckin do post refresh down to b done
      endview
      view b
        when refresh do r = done_value done
      endview
      endblueprint)");
  EXPECT_TRUE(report.WithCode("undelivered-post").empty());
  EXPECT_TRUE(report.WithCode("unknown-post-view").empty());
}

TEST(Validator, UnknownPostViewIsAWarning) {
  const auto report = Validate(R"(
      blueprint t
      view a
        when ckin do post refresh down to ghost done
      endview
      endblueprint)");
  EXPECT_EQ(report.WithCode("unknown-post-view").size(), 1u);
}

TEST(Validator, UnreadEventIsAWarning) {
  const auto report = Validate(R"(
      blueprint t
      view a
      endview
      view b
        link_from a propagates silence type derived
      endview
      endblueprint)");
  ASSERT_EQ(report.WithCode("unread-event").size(), 1u);
  EXPECT_EQ(report.WithCode("unread-event")[0].view, "");
}

TEST(Validator, UnknownVariableInLetIsAWarning) {
  const auto report = Validate(R"(
      blueprint t
      view a
        let state = ($ghost_prop == good)
      endview
      endblueprint)");
  EXPECT_EQ(report.WithCode("unknown-variable").size(), 1u);
}

TEST(Validator, BuiltinAndDefaultViewVariablesAreKnown) {
  const auto report = Validate(R"(
      blueprint t
      view default
        property uptodate default true
      endview
      view a
        let state = ($uptodate == true) and ($view == a) and ($version != 0)
      endview
      endblueprint)");
  EXPECT_TRUE(report.WithCode("unknown-variable").empty());
}

TEST(Validator, PropertyAssignedByRuleCountsAsDeclared) {
  const auto report = Validate(R"(
      blueprint t
      view a
        let state = ($result == good)
        when sim do result = $arg done
      endview
      endblueprint)");
  EXPECT_TRUE(report.WithCode("unknown-variable").empty());
}

TEST(Validator, EmptyPropagatesIsAnError) {
  // Unreachable through the parser (it requires at least one event),
  // but constructible through the API; the validator must flag it.
  Blueprint bp;
  bp.name = "api";
  ViewTemplate view;
  view.name = "v";
  LinkTemplate link;
  link.kind = metadb::LinkKind::kUse;
  view.links.push_back(std::move(link));
  bp.views.push_back(std::move(view));
  const auto report = ValidateBlueprint(bp);
  EXPECT_EQ(report.WithCode("empty-propagates").size(), 1u);
  EXPECT_TRUE(report.HasErrors());
}

TEST(Validator, DuplicateAssignIsAWarning) {
  const auto report = Validate(R"(
      blueprint t
      view a
        when ckin do x = one done
        when ckin do x = two done
      endview
      endblueprint)");
  EXPECT_EQ(report.WithCode("duplicate-rule").size(), 1u);
}

TEST(Validator, ShadowedPropertyIsAWarning) {
  const auto report = Validate(R"(
      blueprint t
      view default
        property uptodate default true
      endview
      view pessimist
        property uptodate default false
      endview
      endblueprint)");
  EXPECT_EQ(report.WithCode("shadowed-property").size(), 1u);
}

TEST(Validator, SameDefaultShadowingIsFine) {
  const auto report = Validate(R"(
      blueprint t
      view default
        property uptodate default true
      endview
      view agreeing
        property uptodate default true
      endview
      endblueprint)");
  EXPECT_TRUE(report.WithCode("shadowed-property").empty());
}

TEST(Validator, ReportFormatting) {
  const auto report = Validate(R"(
      blueprint t
      view a
        when ckin do post nowhere down done
      endview
      endblueprint)");
  const std::string text = FormatValidationReport(report);
  EXPECT_NE(text.find("warning [undelivered-post]"), std::string::npos);
  EXPECT_NE(text.find("in view a"), std::string::npos);

  EXPECT_EQ(FormatValidationReport(ValidationReport{}),
            "blueprint is clean\n");
}

TEST(Validator, CountsSplitBySeverity) {
  const auto report = Validate(R"(
      blueprint t
      view a
        link_from ghost propagates ev type derived
        when ckin do post nowhere down done
        when ev do x = y done
      endview
      endblueprint)");
  EXPECT_EQ(report.ErrorCount(), 1u);   // unknown-link-view.
  EXPECT_GE(report.WarningCount(), 1u); // undelivered-post.
}

}  // namespace
}  // namespace damocles::blueprint
