// Crash-point fuzz for WAL recovery (the PR's durability invariant):
// for ANY kill point — including mid-record and mid-checkpoint byte
// offsets — recover + resume must reproduce the uninterrupted run's
// journal record multiset, property state, workspace, clock and
// sharded epoch ceiling.
//
// Each seeded iteration builds a random workload (check-ins, derive
// links, event posts, clock advances, explicit checkpoints) and runs
// it to completion on a durable server whose WalAppendObserver records
// every durable extent (path, end offset) in global order — the exact
// byte ranges a kill -9 would have preserved at each instant. The
// harness then picks a random extent and a random byte offset *within*
// it, rewinds the WAL directory to that cut (later files removed,
// the cut file truncated mid-record), constructs a fresh server on the
// directory (auto-recovery), resumes the workload right after the last
// surviving operation and asserts end-state equality with the
// uninterrupted run.
//
// Variants by seed: even seeds run 1-shard; seed % 4 == 1 runs 4-shard
// deterministic; seed % 4 == 3 runs 4-shard THREADED (lane stealing +
// worker-thread WAL appends; the suite runs under ASan in CI). The
// fsync policy and segment size are random per seed so rolls and every
// flush discipline are exercised.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "engine/project_server.hpp"
#include "events/wal.hpp"
#include "metadb/persistence.hpp"
#include "metadb/recovery.hpp"

namespace damocles {
namespace {

using engine::ProjectServer;
using engine::ServerOptions;
using events::FsyncPolicy;
using metadb::Oid;

// Constant-valued rules plus link templates, so RegisterLink produces
// propagating links and the final property state is schedule-invariant
// (any delivery order yields the same values — required for the
// threaded variant).
constexpr const char* kCrashBlueprint = R"(blueprint crash_fuzz
view default
  when edit do edited = yes done
  when ckin do checked = yes done
endview
view hdl
  when edit do edited = yes done
  when ckin do checked = yes done
  when note do noted = yes done
endview
view relay
  link_from hdl propagates edit, ckin type derived
  when edit do post note down done
  when note do noted = yes done
  when ckin do checked = yes done
endview
view sink
  link_from relay propagates note, edit type derived
  link_from hdl propagates ckin type derived
  when note do noted = yes done
  when edit do edited = yes done
  when ckin do checked = yes done
endview
endblueprint)";

// A loosened variant proposed/promoted by the policy-lifecycle steps:
// same views and constant-valued rules (still schedule-invariant), but
// fewer events propagate, so promotions genuinely change wave shapes.
constexpr const char* kCrashBlueprintLoose = R"(blueprint crash_fuzz
view default
  when edit do edited = yes done
  when ckin do checked = yes done
endview
view hdl
  when edit do edited = yes done
  when ckin do checked = yes done
  when note do noted = yes done
endview
view relay
  link_from hdl propagates edit type derived
  when edit do edited = yes done
  when note do noted = yes done
  when ckin do checked = yes done
endview
view sink
  link_from relay propagates note type derived
  link_from hdl propagates ckin type derived
  when note do noted = yes done
  when edit do edited = yes done
  when ckin do checked = yes done
endview
endblueprint)";

/// One deterministic workload step. The plan is a pure function of the
/// seed, so the resumed run replays byte-identical operations.
struct Step {
  enum Kind {
    kCheckIn,
    kLink,
    kEvent,
    kAdvance,
    kCheckpoint,
    kPolicyPropose,
    kPolicyValidate,
    kPolicyPromote,
    kPolicyRollback,
  } kind = kCheckIn;
  std::string block;
  std::string view;
  std::string content;   ///< kCheckIn.
  Oid link_from;         ///< kLink.
  Oid link_to;           ///< kLink.
  std::string event;     ///< kEvent.
  bool delta = false;    ///< kCheckpoint kind (delta chains onto the base).
  int version = 1;       ///< kEvent target version.
  int64_t seconds = 0;   ///< kAdvance.
  uint64_t policy_id = 0;     ///< kPolicyValidate / kPolicyPromote.
  bool policy_loose = false;  ///< kPolicyPropose text variant.
};

/// Mirror of the PolicyStore lifecycle, so MakePlan only emits legal
/// transitions (every policy step then logs exactly one WAL op, which
/// the op->step resume mapping depends on). Version 1 is the adopted
/// InitializeBlueprint install.
struct PolicyModel {
  enum Status { kProposed, kValidated, kPromoted, kSuperseded, kRolledBack };
  uint64_t next_id = 2;
  std::vector<uint64_t> stack{1};
  std::map<uint64_t, Status> status{{1, kPromoted}};

  Step Propose() {
    Step step;
    step.kind = Step::kPolicyPropose;
    step.policy_id = next_id++;
    step.policy_loose = step.policy_id % 2 == 0;
    status[step.policy_id] = kProposed;
    return step;
  }

  std::vector<uint64_t> WithStatus(std::initializer_list<Status> wanted,
                                   uint64_t exclude) const {
    std::vector<uint64_t> out;
    for (const auto& [id, st] : status) {
      if (id == exclude) continue;
      for (const Status w : wanted) {
        if (st == w) {
          out.push_back(id);
          break;
        }
      }
    }
    return out;
  }

  /// Emits one random legal lifecycle step (falls back to propose).
  Step RandomStep(Rng& rng) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return Propose();
      case 1: {
        const std::vector<uint64_t> ids = WithStatus({kProposed}, 0);
        if (ids.empty()) return Propose();
        Step step;
        step.kind = Step::kPolicyValidate;
        step.policy_id = ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
        // Both blueprint variants validate cleanly.
        status[step.policy_id] = kValidated;
        return step;
      }
      case 2: {
        const std::vector<uint64_t> ids =
            WithStatus({kValidated, kSuperseded, kRolledBack}, stack.back());
        if (ids.empty()) return Propose();
        Step step;
        step.kind = Step::kPolicyPromote;
        step.policy_id = ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
        status[stack.back()] = kSuperseded;
        stack.push_back(step.policy_id);
        status[step.policy_id] = kPromoted;
        return step;
      }
      default: {
        if (stack.size() < 2) return Propose();
        Step step;
        step.kind = Step::kPolicyRollback;
        status[stack.back()] = kRolledBack;
        stack.pop_back();
        status[stack.back()] = kPromoted;
        return step;
      }
    }
  }
};

struct Plan {
  std::vector<Step> steps;
};

Plan MakePlan(uint64_t seed) {
  Rng rng(seed);
  Plan plan;
  const char* kViews[] = {"hdl", "relay", "sink", "sch"};
  const char* kEvents[] = {"edit", "note", "ckin"};
  const int blocks = static_cast<int>(rng.UniformInt(3, 6));

  // Model of workspace state, so later steps reference OIDs that exist.
  std::map<std::pair<std::string, std::string>, int> versions;
  std::vector<Oid> oids;
  PolicyModel policy;

  const int steps = static_cast<int>(rng.UniformInt(20, 30));
  for (int i = 0; i < steps; ++i) {
    Step step;
    const double draw = oids.empty() ? 0.0 : rng.UniformDouble();
    if (draw < 0.30) {
      step.kind = Step::kCheckIn;
      step.block = "blk" + std::to_string(rng.UniformInt(0, blocks - 1));
      step.view = kViews[rng.UniformInt(0, 3)];
      const int version = ++versions[{step.block, step.view}];
      step.content = step.block + "/" + step.view + " v" +
                     std::to_string(version) + " seed" + std::to_string(seed);
      oids.push_back(Oid{step.block, step.view, version});
    } else if (draw < 0.45 && oids.size() >= 2) {
      step.kind = Step::kLink;
      step.link_from = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      step.link_to = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      if (step.link_from == step.link_to) continue;
    } else if (draw < 0.70) {
      step.kind = Step::kEvent;
      const Oid& target = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      step.block = target.block;
      step.view = target.view;
      step.version = target.version;
      step.event = kEvents[rng.UniformInt(0, 2)];
    } else if (draw < 0.78) {
      step.kind = Step::kAdvance;
      step.seconds = rng.UniformInt(1, 600);
    } else if (draw < 0.85) {
      step.kind = Step::kCheckpoint;
      // Half the explicit checkpoints are deltas, so kill points land
      // inside delta file writes and mid-chain manifest renames too.
      step.delta = rng.UniformInt(0, 1) == 1;
    } else {
      // Policy lifecycle: propose/validate/promote/rollback, legal by
      // construction (mid-promote kill points are the interesting part).
      step = policy.RandomStep(rng);
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

/// Executes plan steps [from, plan.size()). Link registrations that the
/// database rejects (duplicate endpoints etc.) fail identically in the
/// full and the resumed run, because both see the same state.
void RunSteps(ProjectServer& server, const Plan& plan, size_t from,
              std::vector<size_t>* op_to_step) {
  for (size_t i = from; i < plan.steps.size(); ++i) {
    const Step& step = plan.steps[i];
    const uint64_t before = server.GetWalStatus().ops_logged;
    switch (step.kind) {
      case Step::kCheckIn:
        server.CheckIn(step.block, step.view, step.content, "fuzz");
        break;
      case Step::kLink:
        try {
          server.RegisterLink(metadb::LinkKind::kDerive, step.link_from,
                              step.link_to);
        } catch (const Error&) {
          // Deterministically rejected in both runs.
        }
        break;
      case Step::kEvent: {
        events::EventMessage event;
        event.name = step.event;
        event.direction = events::Direction::kDown;
        event.target = Oid{step.block, step.view, step.version};
        event.user = "fuzz";
        event.timestamp = server.clock().NowSeconds();
        server.Submit(std::move(event));
        break;
      }
      case Step::kAdvance:
        server.AdvanceClock(step.seconds);
        break;
      case Step::kCheckpoint:
        server.WalCheckpoint(step.delta ? engine::CheckpointMode::kDelta
                                        : engine::CheckpointMode::kFull);
        break;
      case Step::kPolicyPropose:
        server.PolicyPropose(
            step.policy_loose ? kCrashBlueprintLoose : kCrashBlueprint,
            "fuzz", "proposal " + std::to_string(step.policy_id));
        break;
      case Step::kPolicyValidate:
        server.PolicyValidate(step.policy_id);
        break;
      case Step::kPolicyPromote:
        server.PolicyPromote(step.policy_id);
        break;
      case Step::kPolicyRollback:
        server.PolicyRollback();
        break;
    }
    if (op_to_step != nullptr) {
      // Record which step produced each op_seq (one op per op-bearing
      // step; checkpoints and rejected links log nothing).
      const uint64_t after = server.GetWalStatus().ops_logged;
      for (uint64_t seq = before + 1; seq <= after; ++seq) {
        op_to_step->resize(static_cast<size_t>(seq) + 1, i);
        (*op_to_step)[static_cast<size_t>(seq)] = i;
      }
    }
  }
  server.Drain();
}

/// End-state fingerprint compared between the runs.
struct Fingerprint {
  std::vector<std::string> journal;  ///< Sorted record lines.
  std::string db_text;
  std::string workspace_text;
  int64_t clock_seconds = 0;
  uint64_t epoch_ceiling = 0;
  std::string policy_text;      ///< Serialized policy commit chain.
  uint64_t policy_version = 0;  ///< Version the engines are bound to.
};

Fingerprint Capture(ProjectServer& server) {
  Fingerprint fp;
  if (server.is_sharded()) {
    fp.journal = server.sharded_engine()->JournalLines();
    fp.epoch_ceiling = server.sharded_engine()->epoch_ceiling();
  } else {
    const events::EventJournal& journal = server.engine().journal();
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      fp.journal.push_back(
          "[" + std::string(events::EventOriginName(record.event.origin)) +
          "] " + events::FormatEvent(record.event));
    }
  }
  std::sort(fp.journal.begin(), fp.journal.end());
  fp.db_text = metadb::SaveDatabaseString(server.database());
  fp.workspace_text = metadb::SaveWorkspaceText(server.workspace());
  fp.clock_seconds = server.clock().NowSeconds();
  fp.policy_text = server.policy_store().SerializeText();
  fp.policy_version = server.engine().policy_version();
  return fp;
}

/// Thread-safe recording of every durable extent, in global order.
class AppendTrace final : public events::WalAppendObserver {
 public:
  struct Extent {
    std::string path;
    uint64_t end = 0;
  };

  void OnDurableExtent(const std::string& path, uint64_t end) override {
    std::lock_guard<std::mutex> lock(mutex_);
    extents_.push_back(Extent{path, end});
  }

  std::vector<Extent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return extents_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Extent> extents_;
};

/// Rewinds `dir` to the kill point: every byte durable before the cut
/// extent survives; the cut extent itself survives only up to
/// `cut_bytes` (possibly mid-record); everything later is gone.
void ApplyCut(const std::filesystem::path& dir,
              const std::vector<AppendTrace::Extent>& extents,
              size_t cut_index, uint64_t cut_bytes) {
  std::map<std::string, uint64_t> survive;
  for (size_t i = 0; i < cut_index; ++i) {
    uint64_t& end = survive[extents[i].path];
    end = std::max(end, extents[i].end);
  }
  uint64_t& cut_end = survive[extents[cut_index].path];
  cut_end = std::max(cut_end, cut_bytes);

  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    const auto it = survive.find(path);
    if (it == survive.end() || it->second == 0) {
      std::filesystem::remove(entry.path());
    } else if (std::filesystem::file_size(entry.path()) > it->second) {
      std::filesystem::resize_file(entry.path(), it->second);
    }
  }
}

ServerOptions MakeOptions(uint64_t seed, const std::string& wal_dir,
                          AppendTrace* trace) {
  Rng rng(seed ^ 0xc0ffee);
  ServerOptions options;
  options.wal_dir = wal_dir;
  options.wal_segment_bytes = static_cast<size_t>(rng.UniformInt(256, 4096));
  const FsyncPolicy policies[] = {FsyncPolicy::kNone, FsyncPolicy::kBatch,
                                  FsyncPolicy::kEveryRecord};
  options.wal_fsync = policies[rng.UniformInt(0, 2)];
  options.wal_observer = trace;
  if (seed % 2 == 1) {
    options.num_shards = 4;
    options.deterministic_shards = (seed % 4 == 1);
  }
  return options;
}

void RunSeed(uint64_t seed) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("damocles-crash-" + std::to_string(::getpid()) + "-" +
       std::to_string(seed));
  std::filesystem::remove_all(dir);

  const Plan plan = MakePlan(seed);
  AppendTrace trace;
  Fingerprint expected;
  std::vector<size_t> op_to_step;

  {
    auto server = std::make_unique<ProjectServer>(
        "crash", MakeOptions(seed, dir.string(), &trace));
    server->InitializeBlueprint(kCrashBlueprint);
    RunSteps(*server, plan, 0, &op_to_step);
    expected = Capture(*server);
  }

  const std::vector<AppendTrace::Extent> extents = trace.Snapshot();
  ASSERT_FALSE(extents.empty()) << "seed " << seed;

  // The kill point: a random durable extent, cut at a random byte
  // offset inside it (mid-record and mid-checkpoint cuts included).
  Rng cut_rng(seed ^ 0xdeadbeef);
  const size_t cut_index = static_cast<size_t>(
      cut_rng.UniformInt(0, static_cast<int64_t>(extents.size()) - 1));
  uint64_t prev_end = 0;
  for (size_t i = 0; i < cut_index; ++i) {
    if (extents[i].path == extents[cut_index].path) {
      prev_end = std::max(prev_end, extents[i].end);
    }
  }
  const uint64_t cut_bytes =
      prev_end + static_cast<uint64_t>(cut_rng.UniformInt(
                     0, static_cast<int64_t>(extents[cut_index].end -
                                             prev_end)));
  ApplyCut(dir, extents, cut_index, cut_bytes);

  // Recover on the rewound directory and resume right after the last
  // surviving operation (op 1 is the blueprint install).
  {
    auto recovered = std::make_unique<ProjectServer>(
        "crash", MakeOptions(seed, dir.string(), nullptr));
    const engine::WalStatus status = recovered->GetWalStatus();
    size_t resume_from = 0;
    if (status.ops_logged == 0) {
      recovered->InitializeBlueprint(kCrashBlueprint);
    } else if (status.ops_logged >= 2) {
      ASSERT_LT(status.ops_logged, op_to_step.size()) << "seed " << seed;
      resume_from = op_to_step[static_cast<size_t>(status.ops_logged)] + 1;
    }
    RunSteps(*recovered, plan, resume_from, nullptr);

    const Fingerprint actual = Capture(*recovered);
    ASSERT_EQ(actual.journal, expected.journal)
        << "seed " << seed << " cut " << cut_index << "/" << extents.size()
        << " at byte " << cut_bytes << " in " << extents[cut_index].path;
    ASSERT_EQ(actual.db_text, expected.db_text) << "seed " << seed;
    ASSERT_EQ(actual.workspace_text, expected.workspace_text)
        << "seed " << seed;
    ASSERT_EQ(actual.clock_seconds, expected.clock_seconds)
        << "seed " << seed;
    ASSERT_EQ(actual.epoch_ceiling, expected.epoch_ceiling)
        << "seed " << seed;
    ASSERT_EQ(actual.policy_text, expected.policy_text) << "seed " << seed;
    ASSERT_EQ(actual.policy_version, expected.policy_version)
        << "seed " << seed;
  }

  std::filesystem::remove_all(dir);
}

void RunSeedRange(uint64_t first_seed, uint64_t last_seed) {
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    RunSeed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- Retention fuzz: mid-prune kill points ----------------------------------

/// Disarms every failpoint on scope exit (failure paths included).
struct FailpointGuard {
  ~FailpointGuard() { common::Failpoints::Instance().ClearAll(); }
};

uint64_t DirBytes(const std::filesystem::path& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

/// Like RunSeed, with segment retention enabled and prunes randomly
/// aborted mid-loop by the "wal.prune" failpoint (each removal is
/// atomic, so an aborted loop leaves exactly what a kill -9 between
/// removals leaves: a partial prefix or a gap). Because pruned segments
/// cannot be resurrected by rewinding the final directory, the kill
/// point is restricted to the last committed manifest or later — every
/// earlier cut could need ops legitimately below the committed floor.
/// Returns the full run's pruned-segment count so the batch can assert
/// retention actually fired.
uint64_t RunRetentionSeed(uint64_t seed) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("damocles-crash-ret-" + std::to_string(::getpid()) + "-" +
       std::to_string(seed));
  std::filesystem::remove_all(dir);

  const Plan plan = MakePlan(seed);
  AppendTrace trace;
  Fingerprint expected;
  std::vector<size_t> op_to_step;
  uint64_t segments_pruned = 0;

  auto retention_options = [&dir, seed](AppendTrace* t) {
    ServerOptions options = MakeOptions(seed, dir.string(), t);
    options.wal_segment_bytes = static_cast<size_t>(
        Rng(seed ^ 0x5e9).UniformInt(256, 1024));  // Roll constantly.
    options.wal_retain_segments = static_cast<int>(seed % 2);
    return options;
  };

  {
    FailpointGuard guard;
#if defined(DAMOCLES_FAILPOINTS_ENABLED)
    // Abort a fraction of prune loops partway: the committed manifest
    // stays in charge, the directory keeps a partial/gapped prefix.
    common::Failpoints::Instance().Configure(
        "wal.prune", "error,prob=0.4,seed=" + std::to_string(seed));
#endif
    auto server =
        std::make_unique<ProjectServer>("crash", retention_options(&trace));
    server->InitializeBlueprint(kCrashBlueprint);
    RunSteps(*server, plan, 0, &op_to_step);
    expected = Capture(*server);
    segments_pruned = server->GetWalStatus().segments_pruned;
    // The disk-bound the retention knob promises: segments + checkpoint
    // files for this bounded workload stay far under the cap even with
    // some prunes aborted.
    EXPECT_LE(DirBytes(dir), 256u * 1024u) << "seed " << seed;
  }

  const std::vector<AppendTrace::Extent> extents = trace.Snapshot();
  if (extents.empty()) {
    std::filesystem::remove_all(dir);
    return segments_pruned;
  }

  // Find the last committed manifest extent (final rename target); cuts
  // start there. Cutting exactly at it keeps the manifest whole — the
  // crash-right-after-commit / mid-prune point.
  size_t first_valid = 0;
  for (size_t i = 0; i < extents.size(); ++i) {
    const std::string name =
        std::filesystem::path(extents[i].path).filename().string();
    if (name.rfind("manifest-", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".txt") {
      first_valid = i;
    }
  }
  Rng cut_rng(seed ^ 0xdeadbeef);
  const size_t cut_index = static_cast<size_t>(cut_rng.UniformInt(
      static_cast<int64_t>(first_valid),
      static_cast<int64_t>(extents.size()) - 1));
  uint64_t prev_end = 0;
  for (size_t i = 0; i < cut_index; ++i) {
    if (extents[i].path == extents[cut_index].path) {
      prev_end = std::max(prev_end, extents[i].end);
    }
  }
  uint64_t cut_bytes =
      prev_end + static_cast<uint64_t>(cut_rng.UniformInt(
                     0, static_cast<int64_t>(extents[cut_index].end -
                                             prev_end)));
  if (cut_index == first_valid) cut_bytes = extents[cut_index].end;
  ApplyCut(dir, extents, cut_index, cut_bytes);

  {
    FailpointGuard guard;
#if defined(DAMOCLES_FAILPOINTS_ENABLED)
    common::Failpoints::Instance().Configure(
        "wal.prune", "error,prob=0.4,seed=" + std::to_string(seed ^ 0xf00d));
#endif
    auto recovered =
        std::make_unique<ProjectServer>("crash", retention_options(nullptr));
    const engine::WalStatus status = recovered->GetWalStatus();
    size_t resume_from = 0;
    if (status.ops_logged == 0) {
      recovered->InitializeBlueprint(kCrashBlueprint);
    } else if (status.ops_logged >= 2) {
      EXPECT_LT(status.ops_logged, op_to_step.size()) << "seed " << seed;
      if (status.ops_logged >= op_to_step.size()) {
        std::filesystem::remove_all(dir);
        return segments_pruned;
      }
      resume_from = op_to_step[static_cast<size_t>(status.ops_logged)] + 1;
    }
    RunSteps(*recovered, plan, resume_from, nullptr);

    const Fingerprint actual = Capture(*recovered);
    EXPECT_EQ(actual.journal, expected.journal)
        << "seed " << seed << " cut " << cut_index << "/" << extents.size()
        << " at byte " << cut_bytes << " in " << extents[cut_index].path;
    EXPECT_EQ(actual.db_text, expected.db_text) << "seed " << seed;
    EXPECT_EQ(actual.workspace_text, expected.workspace_text)
        << "seed " << seed;
    EXPECT_EQ(actual.clock_seconds, expected.clock_seconds) << "seed " << seed;
    EXPECT_EQ(actual.epoch_ceiling, expected.epoch_ceiling) << "seed " << seed;
    EXPECT_EQ(actual.policy_text, expected.policy_text) << "seed " << seed;
    EXPECT_EQ(actual.policy_version, expected.policy_version)
        << "seed " << seed;
  }

  std::filesystem::remove_all(dir);
  return segments_pruned;
}

void RunRetentionSeedRange(uint64_t first_seed, uint64_t last_seed) {
  uint64_t total_pruned = 0;
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    total_pruned += RunRetentionSeed(seed);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
  // Retention must actually have pruned somewhere in the batch, or the
  // disk-cap assertion above is vacuous.
  EXPECT_GT(total_pruned, 0u) << "seeds " << first_seed << ".." << last_seed;
}

// 4 × 40 = 160 seeded kill points, split so ctest parallelism spreads
// them across cores. Even seeds run 1-shard, odd seeds 4-shard
// (deterministic and threaded alternating).
TEST(WalCrashFuzz, RecoverResumeEqualsContinuousSeeds0To39) {
  RunSeedRange(0, 39);
}

TEST(WalCrashFuzz, RecoverResumeEqualsContinuousSeeds40To79) {
  RunSeedRange(40, 79);
}

TEST(WalCrashFuzz, RecoverResumeEqualsContinuousSeeds80To119) {
  RunSeedRange(80, 119);
}

TEST(WalCrashFuzz, RecoverResumeEqualsContinuousSeeds120To159) {
  RunSeedRange(120, 159);
}

// Retention variant: segment pruning on (retain 0 or 1 by seed), prune
// loops randomly aborted mid-removal, kill points at or after the last
// committed manifest. Even seeds 1-shard, odd seeds 4-shard as above.
TEST(WalCrashFuzz, RetentionRecoverResumeSeeds200To239) {
  RunRetentionSeedRange(200, 239);
}

TEST(WalCrashFuzz, RetentionRecoverResumeSeeds240To279) {
  RunRetentionSeedRange(240, 279);
}

}  // namespace
}  // namespace damocles
