#include <gtest/gtest.h>

#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/symbol.hpp"

namespace damocles {
namespace {

TEST(SimClock, StartsAtEpoch) {
  SimClock clock;
  EXPECT_EQ(clock.NowSeconds(), 0);
  EXPECT_EQ(clock.FormatDate(), "day 0 00:00:00");
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(3600);
  clock.Advance(65);
  EXPECT_EQ(clock.NowSeconds(), 3665);
  EXPECT_EQ(clock.FormatDate(), "day 0 01:01:05");
}

TEST(SimClock, RollsOverDays) {
  SimClock clock(2 * 86400 + 3 * 3600 + 4 * 60 + 5);
  EXPECT_EQ(clock.FormatDate(), "day 2 03:04:05");
}

TEST(SimClock, RejectsBackwardsTime) {
  SimClock clock;
  EXPECT_THROW(clock.Advance(-1), Error);
}

TEST(SimClock, StaticFormat) {
  EXPECT_EQ(SimClock::FormatDate(59), "day 0 00:00:59");
  EXPECT_EQ(SimClock::FormatDate(86400), "day 1 00:00:00");
}

TEST(SymbolTable, EmptyStringIsSymbolZero) {
  SymbolTable table;
  EXPECT_EQ(table.Intern(""), 0u);
  EXPECT_EQ(table.Text(0), "");
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable table;
  const SymbolId a = table.Intern("ckin");
  const SymbolId b = table.Intern("ckin");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.Text(a), "ckin");
}

TEST(SymbolTable, DistinctStringsDistinctIds) {
  SymbolTable table;
  EXPECT_NE(table.Intern("ckin"), table.Intern("ckout"));
  EXPECT_EQ(table.size(), 3u);  // "", ckin, ckout.
}

TEST(SymbolTable, FindWithoutIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Find("missing"), SymbolTable::kNoSymbol);
  table.Intern("present");
  EXPECT_NE(table.Find("present"), SymbolTable::kNoSymbol);
}

TEST(SymbolTable, TextThrowsOnUnknownId) {
  SymbolTable table;
  EXPECT_THROW(table.Text(999), NotFoundError);
}

TEST(SymbolTable, HeterogeneousLookupHandlesSubviews) {
  // The engine interns string_views sliced out of larger buffers (event
  // names mid-line); lookups must key on exactly the viewed bytes.
  SymbolTable table;
  const std::string line = "ckin ckinext";
  const SymbolId a = table.Intern(std::string_view(line).substr(0, 4));
  EXPECT_EQ(table.Text(a), "ckin");
  EXPECT_EQ(table.Find("ckin"), a);
  const std::string_view suffix = std::string_view(line).substr(5);
  EXPECT_EQ(table.Find(suffix), SymbolTable::kNoSymbol);
  const SymbolId b = table.Intern("ckinext");
  EXPECT_EQ(table.Find(suffix), b);
}

TEST(SymbolTable, IdsAreDenseAndStable) {
  SymbolTable table;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
    EXPECT_EQ(ids.back(), static_cast<SymbolId>(i + 1));  // 0 is "".
  }
  for (int i = 0; i < 100; ++i) {  // Re-interning moves nothing.
    const SymbolId id = ids[static_cast<size_t>(i)];
    EXPECT_EQ(table.Intern("sym" + std::to_string(i)), id);
    EXPECT_EQ(table.Text(id), "sym" + std::to_string(i));
  }
  EXPECT_EQ(table.size(), 101u);
}

TEST(Log, SilentByDefaultAndCapturable) {
  std::vector<std::string> captured;
  Log::SetSink([&](LogLevel, const std::string& message) {
    captured.push_back(message);
  });

  Log::SetLevel(LogLevel::kOff);
  Log::Warning("dropped");
  EXPECT_TRUE(captured.empty());

  Log::SetLevel(LogLevel::kWarning);
  Log::Debug("below threshold");
  Log::Warning("captured");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "captured");

  Log::SetLevel(LogLevel::kOff);
  Log::SetSink(nullptr);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "off");
}

}  // namespace
}  // namespace damocles
