#include "blueprint/parser.hpp"

#include <gtest/gtest.h>

#include "blueprint/printer.hpp"
#include "common/error.hpp"
#include "workload/edtc.hpp"

namespace damocles::blueprint {
namespace {

using metadb::CarryPolicy;
using metadb::LinkKind;

TEST(Parser, MinimalBlueprint) {
  const Blueprint bp = ParseBlueprint("blueprint empty endblueprint");
  EXPECT_EQ(bp.name, "empty");
  EXPECT_TRUE(bp.views.empty());
}

TEST(Parser, PropertyTemplateDefaults) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view GDSII
      property DRC default bad copy
      property note default "not yet reviewed"
      property counter default 0 move
    endview
    endblueprint)");
  const ViewTemplate* view = bp.FindView("GDSII");
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->properties.size(), 3u);
  EXPECT_EQ(view->properties[0].name, "DRC");
  EXPECT_EQ(view->properties[0].default_value, "bad");
  EXPECT_EQ(view->properties[0].carry, CarryPolicy::kCopy);
  EXPECT_EQ(view->properties[1].default_value, "not yet reviewed");
  EXPECT_EQ(view->properties[1].carry, CarryPolicy::kNone);
  EXPECT_EQ(view->properties[2].carry, CarryPolicy::kMove);
}

TEST(Parser, DuplicatePropertyRejected) {
  EXPECT_THROW(ParseBlueprint(R"(
    blueprint t
    view v
      property p default a
      property p default b
    endview
    endblueprint)"),
               ParseError);
}

TEST(Parser, LinkFromWithCarryAfterViewName) {
  // Paper: "link_from synth_lib move propagates outofdate type depend_on"
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view schematic
      link_from synth_lib move propagates outofdate type depend_on
    endview
    endblueprint)");
  const LinkTemplate& link = bp.FindView("schematic")->links[0];
  EXPECT_EQ(link.kind, LinkKind::kDerive);
  EXPECT_EQ(link.from_view, "synth_lib");
  EXPECT_EQ(link.carry, CarryPolicy::kMove);
  ASSERT_EQ(link.propagates.size(), 1u);
  EXPECT_EQ(link.propagates[0], "outofdate");
  EXPECT_EQ(link.type, "depend_on");
}

TEST(Parser, LinkFromWithCarryAtEnd) {
  // Paper Fig. 3: "link_from NetList propagates OutOfDate type derive_from MOVE"
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view GDSII
      link_from NetList propagates OutOfDate type derive_from move
    endview
    endblueprint)");
  const LinkTemplate& link = bp.FindView("GDSII")->links[0];
  EXPECT_EQ(link.carry, CarryPolicy::kMove);
  EXPECT_EQ(link.type, "derive_from");
}

TEST(Parser, LinkFromMultipleEvents) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view netlist
      link_from schematic propagates nl_sim, outofdate type derived
    endview
    endblueprint)");
  const LinkTemplate& link = bp.FindView("netlist")->links[0];
  ASSERT_EQ(link.propagates.size(), 2u);
  EXPECT_EQ(link.propagates[0], "nl_sim");
  EXPECT_EQ(link.propagates[1], "outofdate");
}

TEST(Parser, UseLinkHasNoSourceView) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view schematic
      use_link move propagates outofdate
    endview
    endblueprint)");
  const LinkTemplate& link = bp.FindView("schematic")->links[0];
  EXPECT_EQ(link.kind, LinkKind::kUse);
  EXPECT_TRUE(link.from_view.empty());
  EXPECT_EQ(link.carry, CarryPolicy::kMove);
}

TEST(Parser, ContinuousAssignment) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view layout
      let state = ($drc_result == good) and ($uptodate == true)
    endview
    endblueprint)");
  const auto& assignments = bp.FindView("layout")->assignments;
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].property, "state");
}

TEST(Parser, RuntimeRuleWithAllActionKinds) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view v
      when ckin do
        uptodate = true;
        last_check_in_date = $date;
        exec netlister "$oid" extra_arg;
        notify "$owner: Your oid $OID has been modified";
        post outofdate down;
        post behavioral_sim_ok down to VerilogNetList
      done
    endview
    endblueprint)");
  const RuntimeRule& rule = bp.FindView("v")->rules[0];
  EXPECT_EQ(rule.event, "ckin");
  ASSERT_EQ(rule.actions.size(), 6u);

  const auto& assign1 = std::get<ActionAssign>(rule.actions[0]);
  EXPECT_EQ(assign1.property, "uptodate");
  EXPECT_EQ(assign1.value.source(), "true");

  const auto& assign2 = std::get<ActionAssign>(rule.actions[1]);
  EXPECT_EQ(assign2.value.source(), "$date");

  const auto& exec = std::get<ActionExec>(rule.actions[2]);
  EXPECT_EQ(exec.script.source(), "netlister");
  ASSERT_EQ(exec.args.size(), 2u);
  EXPECT_EQ(exec.args[0].source(), "$oid");
  EXPECT_EQ(exec.args[1].source(), "extra_arg");

  const auto& notify = std::get<ActionNotify>(rule.actions[3]);
  EXPECT_FALSE(notify.message.IsPureLiteral());

  const auto& post1 = std::get<ActionPost>(rule.actions[4]);
  EXPECT_EQ(post1.event, "outofdate");
  EXPECT_EQ(post1.direction, events::Direction::kDown);
  EXPECT_TRUE(post1.to_view.empty());

  const auto& post2 = std::get<ActionPost>(rule.actions[5]);
  EXPECT_EQ(post2.to_view, "VerilogNetList");
}

TEST(Parser, PostWithArgument) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view schematic
      when ckin do post lvs down "$lvs_res" done
    endview
    endblueprint)");
  const auto& post =
      std::get<ActionPost>(bp.FindView("schematic")->rules[0].actions[0]);
  EXPECT_EQ(post.event, "lvs");
  EXPECT_EQ(post.arg.source(), "$lvs_res");
}

TEST(Parser, TrailingSemicolonTolerated) {
  EXPECT_NO_THROW(ParseBlueprint(R"(
    blueprint t
    view v
      when ckin do uptodate = true; done
    endview
    endblueprint)"));
}

TEST(Parser, ImplicitEndviewBeforeNextView) {
  // The paper's own sample omits endview for 'netlist'.
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view first
      property a default x
    view second
      property b default y
    endview
    endblueprint)");
  EXPECT_NE(bp.FindView("first"), nullptr);
  EXPECT_NE(bp.FindView("second"), nullptr);
  EXPECT_EQ(bp.FindView("first")->properties.size(), 1u);
}

TEST(Parser, ImplicitEndviewBeforeEndblueprint) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view only
      property a default x
    endblueprint)");
  EXPECT_NE(bp.FindView("only"), nullptr);
}

TEST(Parser, DefaultViewIsRecognized) {
  const Blueprint bp = ParseBlueprint(R"(
    blueprint t
    view default
      property uptodate default true
    endview
    endblueprint)");
  ASSERT_NE(bp.DefaultView(), nullptr);
  EXPECT_EQ(bp.DefaultView()->properties[0].name, "uptodate");
}

TEST(Parser, DuplicateViewRejected) {
  EXPECT_THROW(ParseBlueprint(R"(
    blueprint t
    view v
    endview
    view v
    endview
    endblueprint)"),
               ParseError);
}

TEST(Parser, ErrorsCarryPositions) {
  try {
    ParseBlueprint("blueprint t\nview v\n  property\nendview\nendblueprint");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 4);  // Error reported at the unexpected token.
  }
}

TEST(Parser, TheFullEdtcBlueprintParses) {
  const Blueprint bp = ParseBlueprint(workload::EdtcBlueprintText());
  EXPECT_EQ(bp.name, "EDTC_example");
  ASSERT_EQ(bp.views.size(), 6u);
  EXPECT_NE(bp.DefaultView(), nullptr);
  EXPECT_NE(bp.FindView("HDL_model"), nullptr);
  EXPECT_NE(bp.FindView("synth_lib"), nullptr);
  EXPECT_NE(bp.FindView("schematic"), nullptr);
  EXPECT_NE(bp.FindView("netlist"), nullptr);
  EXPECT_NE(bp.FindView("layout"), nullptr);

  const ViewTemplate* schematic = bp.FindView("schematic");
  EXPECT_EQ(schematic->properties.size(), 2u);
  EXPECT_EQ(schematic->links.size(), 3u);
  EXPECT_EQ(schematic->assignments.size(), 1u);
  EXPECT_EQ(schematic->rules.size(), 3u);

  // The synth_lib view is tracked but empty.
  EXPECT_TRUE(bp.FindView("synth_lib")->properties.empty());
}

/// Malformed-input sweep: every fragment must raise ParseError.
class ParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejects, Throws) {
  EXPECT_THROW(ParseBlueprint(GetParam()), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserRejects,
    ::testing::Values(
        "",                                        // No blueprint keyword.
        "blueprint",                               // Missing name.
        "blueprint t",                             // Missing endblueprint.
        "blueprint t view v",                      // Unclosed view at EOF...
        "blueprint t endblueprint trailing",       // Trailing junk.
        "view v endview",                          // Missing header.
        "blueprint t view v property default x endview endblueprint",
        "blueprint t view v property p endview endblueprint",
        "blueprint t view v link_from propagates e endview endblueprint",
        "blueprint t view v use_link endview endblueprint",
        "blueprint t view v let x ($a == b) endview endblueprint",
        "blueprint t view v when do a = b done endview endblueprint",
        "blueprint t view v when ckin a = b done endview endblueprint",
        "blueprint t view v when ckin do a = b endview endblueprint",
        "blueprint t view v when ckin do post x done endview endblueprint",
        "blueprint t view v when ckin do post x sideways done endview "
        "endblueprint",
        "blueprint t view v let x = ($a == ) endview endblueprint",
        "blueprint t view v let x = ($a == b endview endblueprint"));

}  // namespace
}  // namespace damocles::blueprint
