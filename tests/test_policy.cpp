#include "policy/policy_engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"

namespace damocles::policy {
namespace {

using testutil::MakeEdtcServer;

PolicyRequest Request(Operation operation, const std::string& user,
                      const std::string& view = "",
                      const std::string& block = "") {
  PolicyRequest request;
  request.operation = operation;
  request.user = user;
  request.view = view;
  request.block = block;
  return request;
}

TEST(PolicyEngine, DefaultIsAllow) {
  PolicyEngine engine;
  const auto decision =
      engine.Evaluate(Request(Operation::kCheckIn, "anyone", "layout"));
  EXPECT_TRUE(decision.allowed);
  EXPECT_EQ(decision.matched_rule, -1);
}

TEST(PolicyEngine, FirstMatchWins) {
  PolicyEngine engine;
  engine.AddRule({Effect::kAllow, Operation::kCheckIn, "alice", "", "", "",
                  ""});
  engine.AddRule({Effect::kDeny, Operation::kCheckIn, "", "", "", "",
                  "nobody else may check in"});
  EXPECT_TRUE(
      engine.Evaluate(Request(Operation::kCheckIn, "alice")).allowed);
  const auto denied = engine.Evaluate(Request(Operation::kCheckIn, "bob"));
  EXPECT_FALSE(denied.allowed);
  EXPECT_EQ(denied.reason, "nobody else may check in");
  EXPECT_EQ(denied.matched_rule, 1);
}

TEST(PolicyEngine, ScopesMatchIndividually) {
  PolicyEngine engine;
  engine.AddRule({Effect::kDeny, Operation::kCheckIn, "", "layout", "cpu",
                  "", "cpu layout is frozen"});
  EXPECT_FALSE(engine.Evaluate(Request(Operation::kCheckIn, "x", "layout",
                                       "cpu"))
                   .allowed);
  EXPECT_TRUE(engine.Evaluate(Request(Operation::kCheckIn, "x", "layout",
                                      "dsp"))
                  .allowed);
  EXPECT_TRUE(engine.Evaluate(Request(Operation::kCheckIn, "x", "netlist",
                                      "cpu"))
                  .allowed);
  EXPECT_TRUE(engine.Evaluate(Request(Operation::kCheckOut, "x", "layout",
                                      "cpu"))
                  .allowed);
}

TEST(PolicyEngine, GroupsResolveMembership) {
  PolicyEngine engine;
  engine.AddGroup("cad_admins", {"dora", "emil"});
  engine.AddRule({Effect::kAllow, Operation::kCheckIn, "@cad_admins",
                  "synth_lib", "", "", ""});
  engine.AddRule({Effect::kDeny, Operation::kCheckIn, "", "synth_lib", "",
                  "", "only CAD admins install libraries"});

  EXPECT_TRUE(engine.Evaluate(Request(Operation::kCheckIn, "dora",
                                      "synth_lib"))
                  .allowed);
  EXPECT_FALSE(engine.Evaluate(Request(Operation::kCheckIn, "alice",
                                       "synth_lib"))
                   .allowed);
  EXPECT_TRUE(engine.IsMember("cad_admins", "emil"));
  EXPECT_FALSE(engine.IsMember("cad_admins", "alice"));
  EXPECT_FALSE(engine.IsMember("ghosts", "emil"));
}

TEST(PolicyEngine, GroupExtension) {
  PolicyEngine engine;
  engine.AddGroup("team", {"a"});
  engine.AddGroup("team", {"b"});
  EXPECT_TRUE(engine.IsMember("team", "a"));
  EXPECT_TRUE(engine.IsMember("team", "b"));
}

TEST(PolicyEngine, PhaseScopedRules) {
  PolicyEngine engine;
  engine.AddRule({Effect::kDeny, Operation::kCheckIn, "", "layout", "",
                  "signoff", "layout frozen during signoff"});
  // No phase set: the phase-scoped rule does not apply.
  EXPECT_TRUE(
      engine.Evaluate(Request(Operation::kCheckIn, "x", "layout")).allowed);
  engine.SetPhase("signoff");
  EXPECT_FALSE(
      engine.Evaluate(Request(Operation::kCheckIn, "x", "layout")).allowed);
  engine.SetPhase("bringup");
  EXPECT_TRUE(
      engine.Evaluate(Request(Operation::kCheckIn, "x", "layout")).allowed);
}

TEST(PolicyEngine, StatsCountEvaluationsAndDenials) {
  PolicyEngine engine;
  engine.AddRule({Effect::kDeny, Operation::kSnapshot, "", "", "", "", ""});
  engine.Evaluate(Request(Operation::kSnapshot, "x"));
  engine.Evaluate(Request(Operation::kCheckIn, "x"));
  EXPECT_EQ(engine.evaluations(), 2u);
  EXPECT_EQ(engine.denials(), 1u);
}

TEST(PolicyParser, ParsesGroupsAndRules) {
  const PolicyEngine engine = ParsePolicyText(R"(
      # project policy
      group cad_admins dora emil
      allow checkin user=@cad_admins view=synth_lib
      deny checkin view=synth_lib reason="only CAD admins install libraries"
      deny checkin view=layout phase=signoff reason="layout frozen"
      deny post_event event=tapeout user=bob
  )");
  EXPECT_EQ(engine.RuleCount(), 4u);
  EXPECT_TRUE(engine.IsMember("cad_admins", "dora"));
  EXPECT_FALSE(engine.Evaluate(Request(Operation::kCheckIn, "zoe",
                                       "synth_lib"))
                   .allowed);
  EXPECT_EQ(engine
                .Evaluate(Request(Operation::kCheckIn, "zoe", "synth_lib"))
                .reason,
            "only CAD admins install libraries");
  EXPECT_FALSE(engine.Evaluate(Request(Operation::kPostEvent, "bob",
                                       "tapeout"))
                   .allowed);
}

TEST(PolicyParser, RejectsMalformedInput) {
  EXPECT_THROW(ParsePolicyText("grant checkin"), ParseError);
  EXPECT_THROW(ParsePolicyText("allow fly"), ParseError);
  EXPECT_THROW(ParsePolicyText("allow"), ParseError);
  EXPECT_THROW(ParsePolicyText("allow checkin color=red"), ParseError);
  EXPECT_THROW(ParsePolicyText("group admins"), ParseError);
  EXPECT_THROW(ParsePolicyText("deny checkin reason=\"unterminated"),
               ParseError);
}

TEST(PolicyParser, FormatRoundTrips) {
  const char* source =
      "group cad_admins dora emil\n"
      "allow checkin user=@cad_admins view=synth_lib\n"
      "deny checkin view=synth_lib reason=\"admins only\"\n";
  const PolicyEngine engine = ParsePolicyText(source);
  const std::string formatted = FormatPolicy(engine);
  const PolicyEngine reparsed = ParsePolicyText(formatted);
  EXPECT_EQ(FormatPolicy(reparsed), formatted);
  EXPECT_EQ(reparsed.RuleCount(), engine.RuleCount());
}

// --- Server integration -----------------------------------------------------

TEST(ServerPolicy, DeniedCheckinThrowsAndLeavesNoTrace) {
  auto server = MakeEdtcServer();
  PolicyEngine policy = ParsePolicyText(
      "deny checkin view=synth_lib reason=\"admins only\"\n");
  server->SetPolicy(&policy);

  EXPECT_THROW(server->CheckIn("CPU", "synth_lib", "lib", "zoe"),
               PermissionError);
  EXPECT_FALSE(server->database().FindLatest("CPU", "synth_lib").has_value());
  EXPECT_EQ(server->workspace().LatestVersion("CPU", "synth_lib"), 0);
  // Other views unaffected.
  EXPECT_NO_THROW(server->CheckIn("CPU", "HDL_model", "m", "zoe"));
}

TEST(ServerPolicy, PhasePropagatesToPolicy) {
  auto server = MakeEdtcServer();
  PolicyEngine policy = ParsePolicyText(
      "deny checkin view=layout phase=signoff reason=\"layout frozen\"\n");
  server->SetPolicy(&policy);

  EXPECT_NO_THROW(server->CheckIn("CPU", "layout", "l", "carol"));
  server->SetProjectPhase("signoff");
  EXPECT_THROW(server->CheckIn("CPU", "layout", "l2", "carol"),
               PermissionError);
  server->SetProjectPhase("post_signoff");
  EXPECT_NO_THROW(server->CheckIn("CPU", "layout", "l2", "carol"));
}

TEST(ServerPolicy, PostEventGated) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "HDL_model", "m", "alice");
  PolicyEngine policy = ParsePolicyText(
      "deny post_event event=hdl_sim user=bob reason=\"bob may not "
      "bless sims\"\n");
  server->SetPolicy(&policy);

  EXPECT_THROW(
      server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                             "bob"),
      PermissionError);
  EXPECT_NO_THROW(
      server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                             "alice"));
}

TEST(ServerPolicy, InternalRuleEventsAreNotGated) {
  // The default-view ckin rule posts outofdate internally; a policy
  // denying post_event for outofdate must not break change propagation
  // (policies gate designers, not the engine).
  auto server = MakeEdtcServer();
  const auto hdl = server->CheckIn("CPU", "HDL_model", "m", "alice");
  const auto sch = server->CheckIn("CPU", "schematic", "s", "bob");
  server->RegisterLink(metadb::LinkKind::kDerive, hdl, sch);

  PolicyEngine policy =
      ParsePolicyText("deny post_event event=outofdate\n");
  server->SetPolicy(&policy);

  EXPECT_NO_THROW(server->CheckIn("CPU", "HDL_model", "m2", "alice"));
  EXPECT_EQ(testutil::LatestProp(*server, "CPU", "schematic", "uptodate"),
            "false");
}

TEST(ServerPolicy, RemovingPolicyRestoresOpenAccess) {
  auto server = MakeEdtcServer();
  PolicyEngine policy = ParsePolicyText("deny checkin\n");
  server->SetPolicy(&policy);
  EXPECT_THROW(server->CheckIn("CPU", "HDL_model", "m", "alice"),
               PermissionError);
  server->SetPolicy(nullptr);
  EXPECT_NO_THROW(server->CheckIn("CPU", "HDL_model", "m", "alice"));
}

}  // namespace
}  // namespace damocles::policy
