// Property-based stress tests: random event storms against realistic
// projects, checking system-wide invariants rather than point behaviour.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "metadb/persistence.hpp"
#include "query/query.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"
#include "workload/generators.hpp"

namespace damocles {
namespace {

using metadb::Oid;
using testutil::MakeEdtcServer;

/// Event-name pool mixing known EDTC events, flow events and garbage
/// names no rule handles.
const std::vector<std::string>& EventPool() {
  static const std::vector<std::string> kPool = {
      "ckin",   "outofdate", "hdl_sim", "nl_sim",  "drc",
      "lvs",    "res0",      "res1",    "unknown_event",
      "noise",  "tapeout",
  };
  return kPool;
}

/// Applies `n` random events to the server, targeting random existing
/// OIDs (and occasionally ghosts). Returns the number submitted.
size_t Storm(engine::ProjectServer& server, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Oid> targets;
  server.database().ForEachObject(
      [&](metadb::OidId, const metadb::MetaObject& object) {
        targets.push_back(object.oid);
      });
  if (targets.empty()) return 0;

  for (size_t i = 0; i < n; ++i) {
    events::EventMessage event;
    event.name = EventPool()[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(EventPool().size()) - 1))];
    event.direction =
        rng.Chance(0.5) ? events::Direction::kUp : events::Direction::kDown;
    if (rng.Chance(0.05)) {
      event.target = Oid{"ghost", "view", 1};  // Dangling on purpose.
    } else {
      event.target = targets[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(targets.size()) - 1))];
    }
    event.arg = rng.Chance(0.5) ? "good" : "3 errors";
    event.user = "fuzzer";
    server.Submit(std::move(event));
  }
  return n;
}

class EngineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzz, RandomStormsPreserveInvariants) {
  // A populated EDTC project plus a generated flow project share one
  // server, giving the storm a heterogeneous graph.
  auto server = MakeEdtcServer();
  tools::HdlEditor editor(*server);
  tools::SynthesisTool synthesis(*server);
  editor.Edit("CPU", "model", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good",
                         "alice");
  synthesis.Synthesize("CPU", {"REG", "ALU"}, "bob");

  Storm(*server, 500, GetParam());

  const auto& db = server->database();
  const auto& stats = server->engine().stats();

  // Invariant 1: boolean-valued tracked properties stay boolean.
  db.ForEachObject([&](metadb::OidId, const metadb::MetaObject& object) {
    const auto uptodate = object.properties.find("uptodate");
    if (uptodate != object.properties.end()) {
      EXPECT_TRUE(uptodate->second == "true" || uptodate->second == "false")
          << FormatOid(object.oid) << " uptodate=" << uptodate->second;
    }
    const auto state = object.properties.find("state");
    if (state != object.properties.end()) {
      EXPECT_TRUE(state->second == "true" || state->second == "false");
    }
  });

  // Invariant 2: every queue event was journalled; dangling events were
  // counted, not lost.
  EXPECT_GE(server->engine().journal().Size(), stats.events_processed);
  EXPECT_GT(stats.dangling_events, 0u);  // The 5% ghosts.
  EXPECT_EQ(stats.waves_truncated, 0u);

  // Invariant 3: adjacency stays symmetric (every out-link of A to B is
  // an in-link of B from A).
  db.ForEachLink([&](metadb::LinkId id, const metadb::Link& link) {
    const auto& outs = db.OutLinks(link.from);
    EXPECT_NE(std::find(outs.begin(), outs.end(), id), outs.end());
    const auto& ins = db.InLinks(link.to);
    EXPECT_NE(std::find(ins.begin(), ins.end(), id), ins.end());
  });

  // Invariant 4: the database still round-trips through persistence.
  const std::string saved = metadb::SaveDatabaseString(db);
  EXPECT_EQ(metadb::SaveDatabaseString(metadb::LoadDatabaseString(saved)),
            saved);
}

TEST_P(EngineFuzz, StormsAreDeterministic) {
  auto run = [&]() {
    auto server = MakeEdtcServer();
    tools::HdlEditor editor(*server);
    editor.Edit("CPU", "model", "alice");
    editor.Edit("REG", "model", "alice");
    Storm(*server, 300, GetParam());
    return metadb::SaveDatabaseString(server->database());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 2024ull,
                                           0xfeedull));

TEST(EngineScale, DeepChainPropagatesLinearly) {
  // A 200-view chain: one golden edit must reach the end, visiting each
  // OID exactly once.
  workload::FlowSpec flow;
  flow.n_views = 200;
  flow.properties_per_view = 1;
  engine::ProjectServer server("deep");
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "deep"));
  workload::InstantiateFlow(server, flow, "blk");

  server.engine().ResetStats();
  server.CheckIn("blk", "view_0", "edit", "u");
  EXPECT_EQ(server.engine().stats().propagated_deliveries, 199u);
  EXPECT_EQ(server.engine().stats().max_wave_extent, 199u);
  query::ProjectQuery q(server.database());
  EXPECT_EQ(q.OutOfDate().size(), 199u);
}

TEST(EngineScale, WideHierarchyPropagatesOnce) {
  // 1 + 4 + 16 + 64 + 256 = 341 blocks; one outofdate post from the root
  // reaches every component exactly once.
  workload::FlowSpec flow;
  flow.n_views = 1;
  engine::ProjectServer server("wide");
  server.InitializeBlueprint(workload::MakeFlowBlueprint(flow, "wide"));
  workload::HierarchySpec spec;
  spec.depth = 4;
  spec.fanout = 4;
  spec.view = "view_0";
  const auto hierarchy = workload::BuildHierarchy(server, spec);
  ASSERT_EQ(hierarchy.blocks.size(), 341u);

  server.engine().ResetStats();
  events::EventMessage event;
  event.name = "outofdate";
  event.direction = events::Direction::kDown;
  event.target = hierarchy.root;
  server.Submit(std::move(event));
  EXPECT_EQ(server.engine().stats().propagated_deliveries, 340u);

  query::ProjectQuery q(server.database());
  EXPECT_EQ(q.OutOfDate().size(), 341u);  // Root included: it got the event.
}

}  // namespace
}  // namespace damocles
