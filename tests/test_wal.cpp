// Unit tests for the WAL layer: framing, segment rolls, torn-tail
// truncation, manifests, workspace text and the ProjectServer
// durability wiring (checkpoint, recovery, wire commands). The
// randomized crash-point fuzz lives in test_wal_crash_fuzz.cpp.
#include "events/wal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "engine/project_server.hpp"
#include "engine/wire_session.hpp"
#include "events/journal.hpp"
#include "metadb/persistence.hpp"
#include "metadb/recovery.hpp"
#include "metadb/workspace.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"

namespace damocles {
namespace {

using engine::ProjectServer;
using engine::ServerOptions;
using engine::WireSession;
using events::Direction;
using events::EventJournal;
using events::EventMessage;
using events::FsyncPolicy;
using events::WalOpRecord;
using events::WalRecordType;
using events::WalStreamData;
using events::WalWriter;
using events::WalWriterOptions;
using metadb::Oid;

/// A per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("damocles-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  std::filesystem::path path() const { return path_; }

 private:
  std::filesystem::path path_;
};

EventMessage MakeEvent(const std::string& name, const std::string& block,
                       int version = 1) {
  EventMessage event;
  event.name = name;
  event.direction = Direction::kUp;
  event.target = Oid{block, "HDL_model", version};
  event.arg = "arg for " + name;
  event.user = "tester";
  event.timestamp = 42;
  return event;
}

// --- Framing primitives ----------------------------------------------------

TEST(WalFraming, Crc32MatchesKnownVector) {
  // The IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(events::Crc32("123456789", 9), 0xCBF43926u);
  // Seed chaining: CRC(a+b) == CRC(b, CRC(a)).
  const uint32_t whole = events::Crc32("123456789", 9);
  const uint32_t chained =
      events::Crc32("456789", 6, events::Crc32("123", 3));
  EXPECT_EQ(whole, chained);
}

TEST(WalFraming, FsyncPolicyParsesAndFormats) {
  EXPECT_EQ(events::ParseFsyncPolicy("none"), FsyncPolicy::kNone);
  EXPECT_EQ(events::ParseFsyncPolicy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(events::ParseFsyncPolicy("every_record"),
            FsyncPolicy::kEveryRecord);
  EXPECT_THROW(events::ParseFsyncPolicy("sometimes"), WireFormatError);
  EXPECT_STREQ(events::FsyncPolicyName(FsyncPolicy::kBatch), "batch");
}

TEST(WalFraming, OpRecordsRoundTrip) {
  WalOpRecord event_op;
  event_op.type = WalRecordType::kOpEvent;
  event_op.op_seq = 7;
  event_op.event = MakeEvent("hdl_sim", "CPU");
  event_op.event.extra_args = {"x", "y with space"};

  WalOpRecord checkin;
  checkin.type = WalRecordType::kOpCheckIn;
  checkin.op_seq = 8;
  checkin.block = "CPU";
  checkin.view = "HDL_model";
  checkin.content = "module cpu; endmodule";
  checkin.user = "alice";

  WalOpRecord link;
  link.type = WalRecordType::kOpLink;
  link.op_seq = 9;
  link.link_kind = 1;
  link.link_from = Oid{"CPU", "HDL_model", 2};
  link.link_to = Oid{"CPU", "schematic", 1};

  WalOpRecord blueprint;
  blueprint.type = WalRecordType::kOpBlueprint;
  blueprint.op_seq = 10;
  blueprint.text = "blueprint x\nendblueprint";

  WalOpRecord clock;
  clock.type = WalRecordType::kOpClock;
  clock.op_seq = 11;
  clock.clock_seconds = 3600;

  for (const WalOpRecord& op :
       {event_op, checkin, link, blueprint, clock}) {
    const std::string payload = events::EncodeWalOp(op);
    const WalOpRecord back = events::DecodeWalOp(op.type, payload);
    EXPECT_EQ(back.op_seq, op.op_seq);
    EXPECT_EQ(back.event.name, op.event.name);
    EXPECT_EQ(back.event.arg, op.event.arg);
    EXPECT_EQ(back.event.extra_args, op.event.extra_args);
    EXPECT_EQ(back.block, op.block);
    EXPECT_EQ(back.content, op.content);
    EXPECT_EQ(back.link_kind, op.link_kind);
    EXPECT_EQ(back.link_from, op.link_from);
    EXPECT_EQ(back.link_to, op.link_to);
    EXPECT_EQ(back.text, op.text);
    EXPECT_EQ(back.clock_seconds, op.clock_seconds);
  }
}

TEST(WalFraming, DecodeRejectsTruncatedPayload) {
  WalOpRecord op;
  op.type = WalRecordType::kOpCheckIn;
  op.block = "CPU";
  op.view = "HDL_model";
  const std::string payload = events::EncodeWalOp(op);
  EXPECT_THROW(events::DecodeWalOp(op.type,
                                   std::string_view(payload).substr(
                                       0, payload.size() / 2)),
               WireFormatError);
}

// --- Writer / reader -------------------------------------------------------

std::vector<std::string> RowNames(const WalStreamData& data) {
  std::vector<std::string> names;
  for (const auto& row : data.rows) names.push_back(row.event.name);
  return names;
}

TEST(WalWriterReader, RowsRoundTripThroughTheSink) {
  TempDir dir("wal-roundtrip");
  EventJournal journal;
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "shard0";
    WalWriter writer(options);
    journal.SetSink(&writer);
    journal.Record(MakeEvent("ckin", "CPU"));
    journal.Record(MakeEvent("edit", "FPU"));
    journal.Record(MakeEvent("hdl_sim", "CPU", 2));
    writer.Flush();
    journal.SetSink(nullptr);
  }
  const WalStreamData data = events::ReadWalStream(dir.str(), "shard0");
  EXPECT_FALSE(data.torn) << data.error;
  ASSERT_EQ(data.rows.size(), 3u);
  EXPECT_EQ(RowNames(data),
            (std::vector<std::string>{"ckin", "edit", "hdl_sim"}));
  EXPECT_EQ(data.rows[0].event.target, (Oid{"CPU", "HDL_model", 1}));
  EXPECT_EQ(data.rows[0].event.arg, "arg for ckin");
  EXPECT_EQ(data.rows[0].event.user, "tester");
  EXPECT_EQ(data.rows[0].event.timestamp, 42);
  // Offsets ascend and the stream end matches the last record.
  EXPECT_LT(data.rows[0].end_offset, data.rows[2].end_offset);
  EXPECT_EQ(data.valid_end, data.rows[2].end_offset);
}

TEST(WalWriterReader, SegmentsRollAndStayContinuous) {
  TempDir dir("wal-roll");
  EventJournal journal;
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "shard0";
    options.segment_bytes = 256;  // Tiny: every few rows roll.
    WalWriter writer(options);
    journal.SetSink(&writer);
    for (int i = 0; i < 40; ++i) {
      journal.Record(MakeEvent("ev" + std::to_string(i), "CPU"));
    }
    writer.Flush();
    journal.SetSink(nullptr);
    EXPECT_GT(writer.segment_index(), 2u);
  }
  const WalStreamData data = events::ReadWalStream(dir.str(), "shard0");
  EXPECT_FALSE(data.torn) << data.error;
  ASSERT_EQ(data.rows.size(), 40u);
  EXPECT_GT(data.segments.size(), 2u);
  // Base offsets chain exactly: segment N starts where N-1 ended.
  for (size_t i = 1; i < data.segments.size(); ++i) {
    EXPECT_EQ(data.segments[i].base_offset,
              data.segments[i - 1].base_offset +
                  data.segments[i - 1].file_bytes);
  }
  // Symbols re-intern per segment: every segment defines some.
  for (const auto& segment : data.segments) {
    EXPECT_TRUE(segment.header_valid);
    EXPECT_GT(segment.symbols, 0u);
  }
}

TEST(WalWriterReader, ClearEmitsResetMarker) {
  TempDir dir("wal-reset");
  EventJournal journal;
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "shard0";
    WalWriter writer(options);
    journal.SetSink(&writer);
    journal.Record(MakeEvent("ckin", "CPU"));
    journal.Clear();
    journal.Record(MakeEvent("edit", "FPU"));
    writer.Flush();
    journal.SetSink(nullptr);
  }
  const WalStreamData data = events::ReadWalStream(dir.str(), "shard0");
  ASSERT_EQ(data.resets.size(), 1u);
  ASSERT_EQ(data.rows.size(), 2u);
  // The reset falls between the two rows' end offsets.
  EXPECT_GT(data.resets[0], data.rows[0].end_offset);
  EXPECT_LT(data.resets[0], data.rows[1].end_offset);
}

TEST(WalWriterReader, CorruptionTruncatesAtTheTornRecord) {
  TempDir dir("wal-torn");
  std::filesystem::path segment;
  uint64_t intact_end = 0;
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "ops";
    WalWriter writer(options);
    for (uint64_t i = 1; i <= 5; ++i) {
      WalOpRecord op;
      op.type = WalRecordType::kOpClock;
      op.op_seq = i;
      op.clock_seconds = static_cast<int64_t>(i) * 100;
      writer.AppendOp(op);
      if (i == 3) intact_end = writer.logical_end();
    }
    writer.Flush();
    segment = dir.path() / events::WalSegmentFileName("ops", 1);
  }
  // Flip one byte inside the 4th record's payload.
  {
    std::fstream file(segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(static_cast<std::streamoff>(intact_end) + 6);
    file.put('\xff');
  }
  const WalStreamData data = events::ReadWalStream(dir.str(), "ops");
  EXPECT_TRUE(data.torn);
  EXPECT_EQ(data.valid_end, intact_end);
  ASSERT_EQ(data.ops.size(), 3u);
  EXPECT_EQ(data.ops.back().op.clock_seconds, 300);
}

TEST(WalWriterReader, HalfWrittenFrameIsATornTail) {
  TempDir dir("wal-half");
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "ops";
    WalWriter writer(options);
    WalOpRecord op;
    op.type = WalRecordType::kOpClock;
    op.op_seq = 1;
    op.clock_seconds = 100;
    writer.AppendOp(op);
    writer.Flush();
  }
  const uint64_t intact =
      events::ReadWalStream(dir.str(), "ops").valid_end;
  {
    std::ofstream file(dir.path() / events::WalSegmentFileName("ops", 1),
                       std::ios::binary | std::ios::app);
    // A plausible length prefix with no record behind it.
    file.write("\x40\x00\x00\x00\x14", 5);
  }
  const WalStreamData data = events::ReadWalStream(dir.str(), "ops");
  EXPECT_TRUE(data.torn);
  EXPECT_EQ(data.valid_end, intact);
  EXPECT_EQ(data.ops.size(), 1u);
}

TEST(WalWriterReader, TruncateThenContinueWrites) {
  TempDir dir("wal-truncate");
  uint64_t cut = 0;
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "ops";
    WalWriter writer(options);
    for (uint64_t i = 1; i <= 6; ++i) {
      WalOpRecord op;
      op.type = WalRecordType::kOpClock;
      op.op_seq = i;
      op.clock_seconds = static_cast<int64_t>(i);
      writer.AppendOp(op);
      if (i == 2) cut = writer.logical_end();
    }
    writer.Flush();
  }
  events::TruncateWalStream(dir.str(), "ops", cut);
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "ops";
    WalWriter writer(options);
    EXPECT_EQ(writer.logical_end(), cut + 36u)  // Fresh segment header.
        << "writer should continue at the truncation point";
    WalOpRecord op;
    op.type = WalRecordType::kOpClock;
    op.op_seq = 3;
    op.clock_seconds = 333;
    writer.AppendOp(op);
    writer.Flush();
  }
  const WalStreamData data = events::ReadWalStream(dir.str(), "ops");
  EXPECT_FALSE(data.torn) << data.error;
  ASSERT_EQ(data.ops.size(), 3u);
  EXPECT_EQ(data.ops[2].op.clock_seconds, 333);
}

TEST(WalWriterReader, InspectionReportsEveryStream) {
  TempDir dir("wal-inspect");
  EventJournal journal;
  {
    WalWriterOptions options;
    options.dir = dir.str();
    options.stream = "shard0";
    WalWriter writer(options);
    journal.SetSink(&writer);
    journal.Record(MakeEvent("ckin", "CPU"));
    writer.Flush();
    journal.SetSink(nullptr);
  }
  const std::string report = events::FormatWalInspection(dir.str());
  EXPECT_NE(report.find("shard0"), std::string::npos);
  EXPECT_NE(report.find("rows 1"), std::string::npos);
  EXPECT_EQ(report.find("torn"), std::string::npos);
}

// --- Manifests and workspace text ------------------------------------------

TEST(WalManifest, RoundTripsThroughText) {
  metadb::WalManifest manifest;
  manifest.checkpoint_id = 3;
  manifest.op_seq = 17;
  manifest.ops_offset = 4096;
  manifest.clock_seconds = 7200;
  manifest.epoch_next = 12;
  manifest.epoch_waves = 9;
  manifest.num_shards = 4;
  manifest.db_file = "checkpoint-000003.db";
  manifest.db_bytes = 1234;
  manifest.blueprint_file = "checkpoint-000003.bp";
  manifest.blueprint_bytes = 99;
  manifest.workspace_file = "checkpoint-000003.ws";
  manifest.workspace_bytes = 55;
  manifest.streams = {{"shard0", 100}, {"shard1", 200}, {"steal0", 0}};

  const std::string text = metadb::FormatWalManifest(manifest);
  const metadb::WalManifest back = metadb::ParseWalManifest(text);
  EXPECT_EQ(back.checkpoint_id, 3u);
  EXPECT_EQ(back.op_seq, 17u);
  EXPECT_EQ(back.ops_offset, 4096u);
  EXPECT_EQ(back.clock_seconds, 7200);
  EXPECT_EQ(back.epoch_next, 12u);
  EXPECT_EQ(back.epoch_waves, 9u);
  EXPECT_EQ(back.num_shards, 4u);
  EXPECT_EQ(back.db_file, manifest.db_file);
  EXPECT_EQ(back.db_bytes, 1234u);
  EXPECT_EQ(back.streams, manifest.streams);
}

TEST(WalManifest, ParseFailuresNameTheLine) {
  metadb::WalManifest manifest;
  manifest.db_file = "a.db";
  manifest.workspace_file = "a.ws";
  std::string text = metadb::FormatWalManifest(manifest);
  // Truncation (no "end") is rejected.
  const std::string truncated = text.substr(0, text.rfind("end"));
  EXPECT_THROW(metadb::ParseWalManifest(truncated), WireFormatError);
  // Garbage after "end" is rejected, with a line number in the message.
  try {
    metadb::ParseWalManifest(text + "trailing garbage\n");
    FAIL() << "expected WireFormatError";
  } catch (const WireFormatError& error) {
    EXPECT_NE(std::string(error.what()).find("line"), std::string::npos);
  }
}

TEST(WalWorkspaceText, RoundTripsFilesAndVersionFloors) {
  metadb::Workspace workspace("ws");
  workspace.RestoreFile(Oid{"CPU", "HDL_model", 1}, "v1 content", 100);
  workspace.RestoreFile(Oid{"CPU", "HDL_model", 2}, "v2 content", 200);
  workspace.RestoreFile(Oid{"FPU", "schematic", 1}, "with \"quotes\"", 300);
  workspace.RestoreLatestVersion("GONE", "HDL_model", 9);

  const std::string text = metadb::SaveWorkspaceText(workspace);
  metadb::Workspace loaded("ws");
  metadb::LoadWorkspaceText(text, loaded);
  EXPECT_EQ(metadb::SaveWorkspaceText(loaded), text);

  // Version floors survive: the next check-in continues after them.
  size_t files = 0;
  loaded.ForEachFile([&](const Oid&, const metadb::DesignFile&) { ++files; });
  EXPECT_EQ(files, 3u);
  bool saw_floor = false;
  loaded.ForEachLatest([&](std::string_view block, std::string_view,
                           int version) {
    if (block == "GONE") {
      saw_floor = true;
      EXPECT_EQ(version, 9);
    }
  });
  EXPECT_TRUE(saw_floor);
}

// --- Server durability -----------------------------------------------------

std::vector<std::string> ServerJournalLines(ProjectServer& server) {
  if (server.is_sharded()) return server.sharded_engine()->JournalLines();
  std::vector<std::string> lines;
  const events::EventJournal& journal = server.engine().journal();
  for (size_t i = 0; i < journal.Size(); ++i) {
    const events::JournalRecord record = journal.At(i);
    lines.push_back("[" +
                    std::string(events::EventOriginName(record.event.origin)) +
                    "] " + events::FormatEvent(record.event));
  }
  return lines;
}

ServerOptions DurableOptions(const std::string& wal_dir,
                             uint32_t shards = 1) {
  ServerOptions options;
  options.wal_dir = wal_dir;
  options.num_shards = shards;
  if (shards > 1) options.deterministic_shards = true;
  return options;
}

void RunSampleWorkload(ProjectServer& server) {
  const Oid hdl = server.CheckIn("CPU", "HDL_model", "module cpu;", "alice");
  const Oid sch = server.CheckIn("CPU", "schematic", "cpu gates", "bob");
  server.RegisterLink(metadb::LinkKind::kDerive, hdl, sch);
  server.SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 \"good\"",
                        "alice");
  server.AdvanceClock(60);
  server.CheckIn("CPU", "HDL_model", "module cpu; // v2", "alice");
  server.Drain();
}

TEST(ServerDurability, WalDoesNotChangeObservableBehavior) {
  TempDir dir("srv-differential");
  auto plain = testutil::MakeEdtcServer();
  auto durable = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  RunSampleWorkload(*plain);
  RunSampleWorkload(*durable);
  EXPECT_TRUE(durable->durable());
  EXPECT_FALSE(plain->durable());
  EXPECT_EQ(ServerJournalLines(*plain), ServerJournalLines(*durable));
  EXPECT_EQ(metadb::SaveDatabaseString(plain->database()),
            metadb::SaveDatabaseString(durable->database()));
}

TEST(ServerDurability, RecoversFromOpsAloneWithoutCheckpoint) {
  TempDir dir("srv-genesis");
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    RunSampleWorkload(*server);
    lines = ServerJournalLines(*server);
    db_text = metadb::SaveDatabaseString(server->database());
  }
  auto recovered = std::make_unique<ProjectServer>(
      "edtc", DurableOptions(dir.str()));
  const engine::WalStatus status = recovered->GetWalStatus();
  EXPECT_FALSE(status.recovered);  // No checkpoint was ever taken.
  EXPECT_GT(status.replayed_ops, 0u);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(metadb::SaveDatabaseString(recovered->database()), db_text);
}

TEST(ServerDurability, RecoversFromCheckpointPlusTail) {
  TempDir dir("srv-checkpoint");
  std::vector<std::string> lines;
  std::string db_text;
  std::string ws_text;
  int64_t clock_seconds = 0;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    RunSampleWorkload(*server);
    EXPECT_EQ(server->WalCheckpoint(), 1u);
    // Post-checkpoint tail.
    server->CheckIn("FPU", "HDL_model", "module fpu;", "carol");
    server->AdvanceClock(30);
    server->Drain();
    lines = ServerJournalLines(*server);
    db_text = metadb::SaveDatabaseString(server->database());
    ws_text = metadb::SaveWorkspaceText(server->workspace());
    clock_seconds = server->clock().NowSeconds();
  }
  auto recovered = std::make_unique<ProjectServer>(
      "edtc", DurableOptions(dir.str()));
  const engine::WalStatus status = recovered->GetWalStatus();
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.checkpoint_id, 1u);
  EXPECT_GT(status.replayed_ops, 0u);
  EXPECT_GT(status.restored_rows, 0u);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(metadb::SaveDatabaseString(recovered->database()), db_text);
  EXPECT_EQ(metadb::SaveWorkspaceText(recovered->workspace()), ws_text);
  EXPECT_EQ(recovered->clock().NowSeconds(), clock_seconds);
  // The recovered server keeps working: next version numbers continue.
  const Oid next =
      recovered->CheckIn("CPU", "HDL_model", "module cpu; // v3", "alice");
  EXPECT_EQ(next.version, 3);
}

TEST(ServerDurability, TornCheckpointFallsBackToThePreviousOne) {
  TempDir dir("srv-fallback");
  std::vector<std::string> lines;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    RunSampleWorkload(*server);
    EXPECT_EQ(server->WalCheckpoint(), 1u);
    server->CheckIn("FPU", "HDL_model", "module fpu;", "carol");
    EXPECT_EQ(server->WalCheckpoint(), 2u);
    lines = ServerJournalLines(*server);
  }
  // Corrupt the newest checkpoint's database file: recovery must skip
  // manifest 2 and rebuild from checkpoint 1 + the ops tail.
  {
    std::ofstream file(dir.path() / metadb::CheckpointFileName(2, "db"),
                       std::ios::binary | std::ios::trunc);
    file << "damocles-metadb v1\nobjects 9999\n";
  }
  auto recovered = std::make_unique<ProjectServer>(
      "edtc", DurableOptions(dir.str()));
  const engine::WalStatus status = recovered->GetWalStatus();
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.checkpoint_id, 1u);
  EXPECT_EQ(status.manifests_skipped, 1u);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
}

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

// ENOSPC mid-checkpoint: the partially-written checkpoint file must not
// be adopted — the previous manifest chain stays in charge and a fresh
// server recovers from it plus the ops tail.
TEST(ServerDurability, EnospcMidCheckpointKeepsPreviousManifest) {
  TempDir dir("srv-enospc-ckpt");
  std::vector<std::string> lines;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    RunSampleWorkload(*server);
    EXPECT_EQ(server->WalCheckpoint(), 1u);
    server->CheckIn("FPU", "HDL_model", "module fpu;", "carol");
    server->Drain();

    // Disk full 64 bytes into the next checkpoint's first file.
    common::Failpoints::Instance().Configure("checkpoint.write", "short:64");
    EXPECT_THROW(server->WalCheckpoint(), Error);
    common::Failpoints::Instance().ClearAll();

    // The failed checkpoint must not have poisoned the server: it keeps
    // serving and a later checkpoint succeeds.
    EXPECT_FALSE(server->degraded());
    server->CheckIn("FPU", "schematic", "fpu gates", "carol");
    server->Drain();
    lines = ServerJournalLines(*server);
    db_text = metadb::SaveDatabaseString(server->database());
  }
  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  const engine::WalStatus status = recovered->GetWalStatus();
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.checkpoint_id, 1u);  // The ENOSPC one was never adopted.
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  EXPECT_EQ(metadb::SaveDatabaseString(recovered->database()), db_text);
}

// Crash-equivalent failure between manifest write and rename: the .tmp
// manifest stays behind; recovery sweeps it and loads the previous one.
TEST(ServerDurability, ManifestRenameFailureLeavesTmpAndFallsBack) {
  TempDir dir("srv-rename-ckpt");
  std::vector<std::string> lines;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
    RunSampleWorkload(*server);
    EXPECT_EQ(server->WalCheckpoint(), 1u);
    server->CheckIn("FPU", "HDL_model", "module fpu;", "carol");
    server->Drain();

    common::Failpoints::Instance().Configure("checkpoint.manifest.rename",
                                             "error,count=1");
    EXPECT_THROW(server->WalCheckpoint(), Error);
    common::Failpoints::Instance().ClearAll();
    lines = ServerJournalLines(*server);
  }
  // The torn attempt left its manifest as *.tmp only.
  bool saw_tmp = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().extension() == ".tmp") saw_tmp = true;
  }
  EXPECT_TRUE(saw_tmp);

  auto recovered =
      std::make_unique<ProjectServer>("edtc", DurableOptions(dir.str()));
  const engine::WalStatus status = recovered->GetWalStatus();
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.checkpoint_id, 1u);
  EXPECT_EQ(ServerJournalLines(*recovered), lines);
  // The sweep removed the tmp leftover.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

#endif  // DAMOCLES_FAILPOINTS_ENABLED

TEST(ServerDurability, ShardedServerRecoversEpochCeiling) {
  TempDir dir("srv-sharded");
  std::vector<std::string> lines;
  uint64_t epoch_ceiling = 0;
  std::string db_text;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(dir.str(), 4));
    RunSampleWorkload(*server);
    std::vector<std::string> sorted = ServerJournalLines(*server);
    std::sort(sorted.begin(), sorted.end());
    lines = std::move(sorted);
    epoch_ceiling = server->sharded_engine()->epoch_ceiling();
    db_text = metadb::SaveDatabaseString(server->database());
  }
  auto recovered = std::make_unique<ProjectServer>(
      "edtc", DurableOptions(dir.str(), 4));
  std::vector<std::string> recovered_lines = ServerJournalLines(*recovered);
  std::sort(recovered_lines.begin(), recovered_lines.end());
  EXPECT_EQ(recovered_lines, lines);
  EXPECT_EQ(metadb::SaveDatabaseString(recovered->database()), db_text);
  EXPECT_EQ(recovered->sharded_engine()->epoch_ceiling(), epoch_ceiling);
}

TEST(ServerDurability, RecoverFromReplaysAnotherDirectory) {
  TempDir source_dir("srv-source");
  std::vector<std::string> lines;
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(source_dir.str()));
    RunSampleWorkload(*server);
    lines = ServerJournalLines(*server);
  }
  auto fresh = std::make_unique<ProjectServer>("edtc", ServerOptions{});
  const size_t applied = fresh->RecoverFrom(source_dir.str());
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(ServerJournalLines(*fresh), lines);
}

TEST(ServerDurability, RecoverFromOwnDirectoryIsRejected) {
  TempDir dir("srv-self");
  auto server = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  EXPECT_THROW(server->RecoverFrom(dir.str()), Error);
}

TEST(ServerDurability, AutoCheckpointEveryNOps) {
  TempDir dir("srv-autockpt");
  ServerOptions options = DurableOptions(dir.str());
  options.checkpoint_every_ops = 3;
  auto server = testutil::MakeEdtcServer(options);
  RunSampleWorkload(*server);  // 6 logged ops (blueprint excluded).
  EXPECT_GE(server->GetWalStatus().checkpoints_taken, 2u);
}

// --- Wire commands ---------------------------------------------------------

TEST(WireDurability, WalStatusReportsOffAndOn) {
  auto plain = testutil::MakeEdtcServer();
  WireSession off(*plain, "alice");
  EXPECT_EQ(off.HandleLine("wal-status"), "wal off\n");

  TempDir dir("wire-status");
  auto durable = testutil::MakeEdtcServer(DurableOptions(dir.str()));
  WireSession on(*durable, "alice");
  const std::string status = on.HandleLine("wal-status");
  EXPECT_NE(status.find("wal on"), std::string::npos);
  EXPECT_NE(status.find("fsync none"), std::string::npos);
}

TEST(WireDurability, WalCheckpointAndRecoverCommands) {
  TempDir source_dir("wire-recover");
  {
    auto server = testutil::MakeEdtcServer(DurableOptions(source_dir.str()));
    WireSession session(*server, "alice");
    EXPECT_EQ(session.HandleLine("checkin CPU HDL_model \"module cpu;\""),
              "ok CPU,HDL_model,1\n");
    EXPECT_EQ(session.HandleLine("wal-checkpoint"), "ok checkpoint 1\n");
  }
  auto fresh = testutil::MakeEdtcServer();
  WireSession session(*fresh, "alice");
  // Two ops: the blueprint install and the check-in.
  EXPECT_EQ(session.HandleLine("recover " + source_dir.str()),
            "ok replayed 2 op(s)\n");
  EXPECT_TRUE(
      fresh->database().FindObject(Oid{"CPU", "HDL_model", 1}).has_value());
  // Errors stay in-band.
  EXPECT_EQ(session.HandleLine("recover"), "error: usage: recover <wal-dir>\n");
}

TEST(WireDurability, CommandsAreClassifiedForTheMux) {
  EXPECT_EQ(engine::ClassifyWireLine("wal-status"),
            engine::WireCommandKind::kRead);
  EXPECT_EQ(engine::ClassifyWireLine("wal-checkpoint"),
            engine::WireCommandKind::kMutate);
  EXPECT_EQ(engine::ClassifyWireLine("recover /tmp/x"),
            engine::WireCommandKind::kMutate);
}

}  // namespace
}  // namespace damocles
