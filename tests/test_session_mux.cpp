// Epoch-versioned snapshot reads + the multiplexed session server.
//
// Three layers under test:
//  * the MetaDatabase snapshot API (publish / Latest / AtEpoch /
//    purge floor / pinned-epoch stability);
//  * the SessionMux (read-vs-mutate classification, bounded-queue
//    backpressure, mutation log);
//  * the concurrent differential property: N threaded sessions of
//    mixed query/event traffic produce read responses that match a
//    single-session serialized replay of the mutation log, each read
//    evaluated at its pinned epoch.
#include "engine/session_mux.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "test_util.hpp"
#include "viz/flow_viz.hpp"

namespace damocles::engine {
namespace {

using metadb::MetaDatabase;
using metadb::Oid;
using metadb::Snapshot;
using testutil::MakeEdtcServer;

// --- Snapshot API ---------------------------------------------------------

TEST(SessionMuxSnapshotTest, LatestWrapsLiveDatabaseBeforeFirstPublish) {
  MetaDatabase db;
  const Snapshot live = db.Latest();
  EXPECT_TRUE(live.valid());
  EXPECT_FALSE(live.pinned());
  EXPECT_EQ(live.epoch(), Snapshot::kLiveEpoch);
  // Unpinned snapshots see in-place mutations.
  db.CreateObject(Oid{"cpu", "hdl", 1}, "u", 0);
  EXPECT_TRUE(live.db().FindObject(Oid{"cpu", "hdl", 1}).has_value());
}

TEST(SessionMuxSnapshotTest, PinnedEpochIsStableUnderMutation) {
  MetaDatabase db;
  db.CreateObject(Oid{"cpu", "hdl", 1}, "u", 0);
  const Snapshot s1 = db.PublishSnapshot();
  EXPECT_EQ(s1.epoch(), 1u);
  EXPECT_TRUE(s1.pinned());
  EXPECT_EQ(db.snapshot_epoch(), 1u);

  // Mutate and publish epoch 2; the pinned epoch-1 snapshot must not
  // observe any of it.
  const auto id = db.CreateNextVersion("cpu", "hdl", "u", 1);
  db.SetProperty(id, "uptodate", "false");
  const Snapshot s2 = db.PublishSnapshot();
  EXPECT_EQ(s2.epoch(), 2u);

  EXPECT_FALSE(s1.db().FindObject(Oid{"cpu", "hdl", 2}).has_value());
  EXPECT_TRUE(s2.db().FindObject(Oid{"cpu", "hdl", 2}).has_value());
  EXPECT_EQ(db.Latest().epoch(), 2u);

  // Handles are identical across the publish: the frozen version
  // resolves the same OidId to the same object.
  EXPECT_EQ(s2.db().GetObject(id).oid, db.GetObject(id).oid);
}

TEST(SessionMuxSnapshotTest, PublishIsNoOpWithoutMutations) {
  MetaDatabase db;
  db.CreateObject(Oid{"cpu", "hdl", 1}, "u", 0);
  const Snapshot first = db.PublishSnapshot();
  const Snapshot again = db.PublishSnapshot();
  EXPECT_EQ(first.epoch(), again.epoch());
  EXPECT_EQ(&first.db(), &again.db());
  EXPECT_EQ(db.snapshot_epoch(), 1u);
}

TEST(SessionMuxSnapshotTest, AtEpochReturnsNewestAtOrBelow) {
  MetaDatabase db;
  for (int i = 1; i <= 3; ++i) {
    db.CreateNextVersion("cpu", "hdl", "u", i);
    db.PublishSnapshot();
  }
  EXPECT_EQ(db.AtEpoch(2).epoch(), 2u);
  EXPECT_FALSE(db.AtEpoch(2).db().FindObject(Oid{"cpu", "hdl", 3}).has_value());
  // Requests above the head clamp to the newest published version.
  EXPECT_EQ(db.AtEpoch(99).epoch(), 3u);
  EXPECT_THROW(db.AtEpoch(0), NotFoundError);
}

TEST(SessionMuxSnapshotTest, RetentionAdvancesPurgeFloor) {
  MetaDatabase db;
  db.SetSnapshotRetention(4);
  for (int i = 1; i <= 10; ++i) {
    db.CreateNextVersion("cpu", "hdl", "u", i);
    db.PublishSnapshot();
  }
  EXPECT_EQ(db.snapshot_epoch(), 10u);
  // Epochs 1..6 were merged out; the floor names the newest of them.
  EXPECT_EQ(db.snapshot_purge_floor(), 6u);
  EXPECT_THROW(db.AtEpoch(6), NotFoundError);
  EXPECT_EQ(db.AtEpoch(7).epoch(), 7u);
  // A snapshot pinned before merge-out stays readable: handles keep
  // the version alive independently of the store's history.
  const Snapshot early = db.AtEpoch(7);
  for (int i = 11; i <= 20; ++i) {
    db.CreateNextVersion("cpu", "hdl", "u", i);
    db.PublishSnapshot();
  }
  EXPECT_THROW(db.AtEpoch(7), NotFoundError);
  EXPECT_TRUE(early.db().FindObject(Oid{"cpu", "hdl", 7}).has_value());
}

// --- SessionMux basics ----------------------------------------------------

TEST(SessionMuxTest, ReadsPinEpochsMutationsAdvanceThem) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);
  auto alice = mux.Connect("alice");

  // The mux published the initial epoch at construction.
  EXPECT_EQ(mux.head_epoch(), 1u);
  EXPECT_EQ(alice->Execute("epoch"), "epoch 1\n");

  EXPECT_EQ(alice->Execute("checkin CPU HDL_model \"m\""),
            "ok CPU,HDL_model,1\n");
  EXPECT_EQ(mux.head_epoch(), 2u);
  EXPECT_EQ(alice->Execute("epoch"), "epoch 2\n");
  EXPECT_NE(alice->Execute("query block CPU").find("1 object(s)"),
            std::string::npos);
  EXPECT_EQ(alice->last_read_epoch(), 2u);

  const auto log = mux.MutationLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].seq, 1u);
  EXPECT_EQ(log[0].user, "alice");
  EXPECT_EQ(log[0].line, "checkin CPU HDL_model \"m\"");
  EXPECT_EQ(log[0].response, "ok CPU,HDL_model,1\n");
  EXPECT_EQ(log[0].epoch_after, 2u);
  EXPECT_EQ(mux.mutations_applied(), 1u);
}

TEST(SessionMuxTest, UnknownCommandsAnswerImmediately) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);
  auto s = mux.Connect("alice");
  EXPECT_NE(s->Execute("frobnicate").find("unknown command"),
            std::string::npos);
  EXPECT_EQ(mux.mutations_applied(), 0u);
}

TEST(SessionMuxTest, ClockOnlyMutationsDoNotMintEpochs) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);
  auto s = mux.Connect("alice");
  EXPECT_EQ(s->Execute("advance 60"), "ok day 0 00:01:00\n");
  // The clock moved but the database did not: publish was a no-op and
  // the epoch is unchanged (replay reproduces this exactly).
  EXPECT_EQ(mux.head_epoch(), 1u);
  const auto log = mux.MutationLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].epoch_after, 1u);
}

TEST(SessionMuxTest, ConcurrentReadersObserveMonotoneEpochs) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);

  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kReadsPerReader = 300;
  constexpr int kWritesPerWriter = 40;

  std::atomic<bool> go{false};
  std::atomic<uint64_t> applied_ok{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto session = mux.Connect("writer" + std::to_string(w));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kWritesPerWriter; ++i) {
        const std::string line = "checkin w" + std::to_string(w) + "blk" +
                                 std::to_string(i) + " HDL_model \"m\"";
        std::string response = session->Execute(line);
        while (response.rfind("busy:", 0) == 0) {
          response = session->Execute(line);
        }
        ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
        applied_ok.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      auto session = mux.Connect("reader" + std::to_string(r));
      while (!go.load()) std::this_thread::yield();
      uint64_t last_epoch = 0;
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::string response =
            (i % 3 == 0) ? session->Execute("query outofdate")
                         : session->Execute("epoch");
        ASSERT_FALSE(response.empty());
        ASSERT_EQ(response.find("error:"), std::string::npos) << response;
        // Published epochs only move forward under a reader's feet.
        const uint64_t epoch = session->last_read_epoch();
        ASSERT_GE(epoch, last_epoch);
        ASSERT_GE(epoch, 1u);  // Never the unpinned live view.
        last_epoch = epoch;
      }
    });
  }

  go.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mux.mutations_applied(), applied_ok.load());
  EXPECT_EQ(mux.mutations_applied(),
            static_cast<uint64_t>(kWriters * kWritesPerWriter));
  // Every checkin mutates the database, so every applied mutation
  // minted exactly one epoch past the initial publish.
  EXPECT_EQ(mux.head_epoch(), 1u + mux.mutations_applied());
}

TEST(SessionMuxTest, RetryWithBackoffAcceptsEveryMutationUnderSaturation) {
  auto server = MakeEdtcServer();
  SessionMuxOptions options;
  options.mutation_queue_capacity = 1;  // Saturates immediately.
  options.mutation_retry.attempts = 1000;
  options.mutation_retry.initial = std::chrono::milliseconds(1);
  options.mutation_retry.max = std::chrono::milliseconds(4);
  SessionMux mux(*server, options);

  constexpr int kWriters = 6;
  constexpr int kWritesPerWriter = 25;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto session = mux.Connect("writer" + std::to_string(w));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kWritesPerWriter; ++i) {
        const std::string response =
            session->Execute("checkin w" + std::to_string(w) + "blk" +
                             std::to_string(i) + " HDL_model \"m\"");
        // Bounded retry absorbs the saturation: every mutation is
        // eventually accepted, none bounce back "busy".
        ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mux.mutations_applied(),
            static_cast<uint64_t>(kWriters * kWritesPerWriter));
  EXPECT_EQ(mux.busy_rejections(), 0u);
  // The one-slot queue forced actual waits, not just first-try luck.
  EXPECT_GT(mux.mutation_retries(), 0u);
}

TEST(SessionMuxTest, RetryDisabledStillRejectsWhenFull) {
  auto server = MakeEdtcServer();
  SessionMuxOptions options;
  options.mutation_queue_capacity = 1;
  SessionMux mux(*server, options);

  constexpr int kWriters = 6;
  std::atomic<bool> go{false};
  std::atomic<uint64_t> busy{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto session = mux.Connect("writer" + std::to_string(w));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 30; ++i) {
        const std::string response =
            session->Execute("checkin r" + std::to_string(w) + "blk" +
                             std::to_string(i) + " HDL_model \"m\"");
        if (response.rfind("busy:", 0) == 0) busy.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mux.busy_rejections(), busy.load());
  EXPECT_EQ(mux.mutation_retries(), 0u);
}

// --- Fault injection: deadlines, degraded flow-through --------------------

#if defined(DAMOCLES_FAILPOINTS_ENABLED)

/// Scratch WAL directory, removed on destruction.
class MuxTempDir {
 public:
  explicit MuxTempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("damocles-mux-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~MuxTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

class MuxFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { common::Failpoints::Instance().ClearAll(); }
};

TEST_F(MuxFailpointTest, QueueFullFailpointForcesBusyRejection) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);
  auto session = mux.Connect("alice");
  common::Failpoints::Instance().Configure("mux.queue.full", "error,count=1");
  const std::string rejected = session->Execute("checkin CPU HDL_model \"m\"");
  EXPECT_EQ(rejected.rfind("busy:", 0), 0u) << rejected;
  EXPECT_EQ(mux.busy_rejections(), 1u);
  EXPECT_EQ(mux.mutations_applied(), 0u);
  // The failpoint disarmed itself; the resubmit goes through.
  EXPECT_EQ(session->Execute("checkin CPU HDL_model \"m\""),
            "ok CPU,HDL_model,1\n");
}

TEST_F(MuxFailpointTest, DeadlineWithdrawsQueuedMutationWhileApplyStalls) {
  auto server = MakeEdtcServer();
  SessionMuxOptions options;
  options.mutation_deadline = std::chrono::milliseconds(50);
  SessionMux mux(*server, options);

  // The stall fires on the FIRST pop after arming and sleeps the apply
  // thread well past the second submission's deadline.
  common::Failpoints::Instance().Configure("mux.apply.stall",
                                           "delay:400,count=1");
  std::thread first([&] {
    auto session = mux.Connect("alice");
    const std::string response =
        session->Execute("checkin CPU HDL_model \"m\"");
    // Popped entries are never abandoned: the stalled-but-applied
    // mutation still answers "ok" (slow, not lost).
    EXPECT_EQ(response.rfind("ok ", 0), 0u) << response;
  });
  // Let the apply thread pop the first mutation and enter the stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto session = mux.Connect("bob");
  const std::string timed_out =
      session->Execute("checkin FPU HDL_model \"m\"");
  EXPECT_EQ(timed_out.rfind("timeout:", 0), 0u) << timed_out;
  first.join();

  // The withdrawn mutation was never applied — resubmitting it now
  // cannot double-apply (version numbering proves single application).
  EXPECT_EQ(mux.mutation_timeouts(), 1u);
  EXPECT_EQ(mux.mutations_applied(), 1u);
  EXPECT_EQ(session->Execute("checkin FPU HDL_model \"m\""),
            "ok FPU,HDL_model,1\n");
  EXPECT_EQ(mux.mutations_applied(), 2u);
}

TEST_F(MuxFailpointTest, DegradedServerRejectsInBandAndHealsThroughTheMux) {
  MuxTempDir dir("degraded");
  engine::ServerOptions server_options;
  server_options.wal_dir = dir.str();
  server_options.wal_retry.attempts = 1;
  server_options.wal_retry.initial = std::chrono::milliseconds(0);
  server_options.wal_retry.max = std::chrono::milliseconds(1);
  auto server = MakeEdtcServer(server_options);
  SessionMux mux(*server);
  auto session = mux.Connect("alice");

  EXPECT_EQ(session->Execute("checkin CPU HDL_model \"m\""),
            "ok CPU,HDL_model,1\n");

  // Every append now fails. The checkin logs post-apply, so it is
  // still applied and acked (durability pending heal) — the exhausted
  // retry budget trips degraded for everything after it.
  common::Failpoints::Instance().Configure("wal.append", "error");
  EXPECT_EQ(session->Execute("checkin CPU HDL_model \"m2\""),
            "ok CPU,HDL_model,2\n");
  EXPECT_TRUE(server->degraded());

  // Reads keep serving from pinned snapshots while degraded, and the
  // mux fast-path rejects further mutations without queueing them.
  EXPECT_NE(session->Execute("query block CPU").find("2 object(s)"),
            std::string::npos);
  EXPECT_EQ(session->Execute("health").rfind("health degraded", 0), 0u);
  const uint64_t applied_before = mux.mutations_applied();
  const std::string fast_reject =
      session->Execute("checkin CPU HDL_model \"m3\"");
  EXPECT_EQ(fast_reject.rfind("degraded:", 0), 0u) << fast_reject;
  EXPECT_EQ(mux.mutations_applied(), applied_before);

  // The heal surface stays admitted: clear the fault and reopen the
  // WAL through the same session.
  EXPECT_EQ(session->Execute("failpoint clear wal.append"), "ok\n");
  const std::string healed = session->Execute("wal-reopen");
  EXPECT_EQ(healed.rfind("ok healed", 0), 0u) << healed;
  EXPECT_FALSE(server->degraded());
  EXPECT_EQ(session->Execute("health").rfind("health ok", 0), 0u);

  // Writes resume; the rejected mutation (m3) was never applied, so the
  // version counter continues from the acked m2.
  EXPECT_EQ(session->Execute("checkin CPU HDL_model \"m4\""),
            "ok CPU,HDL_model,3\n");
  EXPECT_EQ(server->GetHealth().heals, 1u);
}

#endif  // DAMOCLES_FAILPOINTS_ENABLED

// --- Concurrent differential ---------------------------------------------

struct RecordedRead {
  std::string line;
  uint64_t epoch = 0;
  std::string response;
};

TEST(SessionMuxDifferentialTest, ConcurrentSessionsMatchSerializedReplay) {
  auto server = MakeEdtcServer();
  std::vector<RecordedRead> reads;
  std::vector<MuxLogEntry> log;
  {
    SessionMux mux(*server);

    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 60;

    std::mutex reads_mutex;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 rng(1234u + static_cast<unsigned>(t));
        auto session = mux.Connect("user" + std::to_string(t));
        std::vector<RecordedRead> local;
        // Per-thread blocks so concurrent mutations never conflict;
        // reads roam over every thread's blocks.
        const std::string mine = "t" + std::to_string(t) + "blk";
        int checkins = 0;
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kOpsPerThread; ++i) {
          const uint32_t dice = rng() % 10;
          if (dice < 4) {  // ~40% mutations.
            std::string line;
            if (checkins == 0 || dice < 3) {
              line = "checkin " + mine + " HDL_model \"m\"";
              ++checkins;
            } else {
              line = "postEvent hdl_sim up " + mine + ",HDL_model," +
                     std::to_string(1 + (rng() % checkins)) + " \"good\"";
            }
            std::string response = session->Execute(line);
            while (response.rfind("busy:", 0) == 0) {
              response = session->Execute(line);
            }
            ASSERT_EQ(response.find("error:"), std::string::npos)
                << line << " -> " << response;
          } else {  // ~60% reads.
            std::string line;
            switch (rng() % 4) {
              case 0:
                line = "query outofdate";
                break;
              case 1:
                line = "query block t" + std::to_string(rng() % kThreads) +
                       "blk";
                break;
              case 2:
                line = "report";
                break;
              default:
                line = "blockers sim_result=good";
                break;
            }
            RecordedRead read;
            read.line = line;
            read.response = session->Execute(line);
            read.epoch = session->last_read_epoch();
            local.push_back(std::move(read));
          }
        }
        std::lock_guard<std::mutex> lock(reads_mutex);
        for (auto& read : local) reads.push_back(std::move(read));
      });
    }
    go.store(true);
    for (std::thread& t : threads) t.join();
    log = mux.MutationLog();
  }

  ASSERT_FALSE(log.empty());
  ASSERT_FALSE(reads.empty());

  // Serialized replay on a fresh identical server: same blueprint,
  // same mutation order, one session per user — every mutation
  // response, every minted epoch and every pinned-epoch read must
  // reproduce exactly.
  auto replay = MakeEdtcServer();
  replay->database().PublishSnapshot();  // The mux's initial epoch.

  std::map<uint64_t, std::vector<const RecordedRead*>> reads_by_epoch;
  for (const RecordedRead& read : reads) {
    reads_by_epoch[read.epoch].push_back(&read);
  }
  // Reads pinned epochs the replay will reach; nothing below the
  // initial publish, nothing above the final mutation's epoch.
  ASSERT_GE(reads_by_epoch.begin()->first, 1u);
  ASSERT_LE(reads_by_epoch.rbegin()->first, log.back().epoch_after);

  WireSession replay_reader(*replay, "replay-reader");
  replay_reader.set_snapshot_reads(true);
  const auto check_reads_at = [&](uint64_t epoch) {
    const auto it = reads_by_epoch.find(epoch);
    if (it == reads_by_epoch.end()) return;
    for (const RecordedRead* read : it->second) {
      EXPECT_EQ(replay_reader.HandleLine(read->line), read->response)
          << "read '" << read->line << "' diverged at epoch " << epoch;
      EXPECT_EQ(replay_reader.last_read_epoch(), epoch);
    }
    reads_by_epoch.erase(it);
  };

  std::map<std::string, std::unique_ptr<WireSession>> replay_sessions;
  check_reads_at(replay->database().snapshot_epoch());
  for (const MuxLogEntry& entry : log) {
    auto& session = replay_sessions[entry.user];
    if (session == nullptr) {
      session = std::make_unique<WireSession>(*replay, entry.user);
    }
    EXPECT_EQ(session->HandleLine(entry.line), entry.response)
        << "mutation diverged at seq " << entry.seq;
    EXPECT_EQ(replay->database().PublishSnapshot().epoch(), entry.epoch_after)
        << "epoch diverged at seq " << entry.seq;
    check_reads_at(entry.epoch_after);
  }
  EXPECT_TRUE(reads_by_epoch.empty())
      << reads_by_epoch.size() << " read epoch group(s) never reached";
}

TEST(SessionMuxDifferentialTest, ShardedServerMatchesSerializedReplay) {
  // Same property with the mutations flowing through the sharded
  // intake rings (the replay side stays single-engine: the meta-data
  // outcome must be identical either way).
  ServerOptions options;
  options.num_shards = 4;
  auto server = MakeEdtcServer(options);
  ASSERT_TRUE(server->is_sharded());

  std::vector<MuxLogEntry> log;
  {
    SessionMux mux(*server);
    constexpr int kThreads = 3;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto session = mux.Connect("user" + std::to_string(t));
        const std::string mine = "s" + std::to_string(t) + "blk";
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 20; ++i) {
          std::string line = (i % 4 == 3)
                                 ? "postEvent hdl_sim up " + mine +
                                       ",HDL_model," +
                                       std::to_string(i / 4 + 1) + " \"good\""
                                 : "checkin " + mine + " HDL_model \"m\"";
          std::string response = session->Execute(line);
          while (response.rfind("busy:", 0) == 0) {
            response = session->Execute(line);
          }
          ASSERT_EQ(response.find("error:"), std::string::npos)
              << line << " -> " << response;
        }
      });
    }
    go.store(true);
    for (std::thread& t : threads) t.join();
    log = mux.MutationLog();
  }

  auto replay = MakeEdtcServer();
  replay->database().PublishSnapshot();
  std::map<std::string, std::unique_ptr<WireSession>> replay_sessions;
  for (const MuxLogEntry& entry : log) {
    auto& session = replay_sessions[entry.user];
    if (session == nullptr) {
      session = std::make_unique<WireSession>(*replay, entry.user);
    }
    EXPECT_EQ(session->HandleLine(entry.line), entry.response)
        << "mutation diverged at seq " << entry.seq;
    EXPECT_EQ(replay->database().PublishSnapshot().epoch(), entry.epoch_after)
        << "epoch diverged at seq " << entry.seq;
  }
}

// --- Policy promote/rollback through the mux ------------------------------

TEST(SessionMuxPolicyTest, PinnedEpochKeepsRuleBindingsAcrossPromote) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);
  auto session = mux.Connect("admin");

  ASSERT_EQ(session->Execute("checkin CPU HDL_model \"m\""),
            "ok CPU,HDL_model,1\n");
  ASSERT_EQ(session->Execute("checkin CPU schematic \"s\""),
            "ok CPU,schematic,1\n");
  ASSERT_EQ(session->Execute("link derive CPU,HDL_model,1 CPU,schematic,1"),
            "ok\n");

  // Pin the pre-promote epoch the way a reader session does.
  const Snapshot pinned = server->database().Latest();
  ASSERT_TRUE(pinned.pinned());
  const uint64_t epoch_e = pinned.epoch();
  const std::string dot_at_e = viz::ExportDot(pinned);
  EXPECT_NE(dot_at_e.find("outofdate"), std::string::npos)
      << "the strict binding must label the derive link";

  const uint64_t loose_id = server->PolicyPropose(
      workload::EdtcLoosenedBlueprintText(), "admin", "loosen");
  server->PolicyValidate(loose_id);
  const std::string promoted =
      session->Execute("policy-promote " + std::to_string(loose_id));
  ASSERT_EQ(promoted.rfind("ok promoted version", 0), 0u) << promoted;
  EXPECT_GT(mux.head_epoch(), epoch_e)
      << "retemplating the live links must mint a new epoch";

  // New reads rebind to the loosened rule set...
  const std::string dot_live = session->Execute("viz dot");
  EXPECT_EQ(dot_live.find("outofdate"), std::string::npos) << dot_live;
  EXPECT_EQ(session->last_read_epoch(), mux.head_epoch());

  // ...while the session pinned at epoch E keeps the old bindings
  // byte-identical, both through its handle and through AtEpoch.
  EXPECT_EQ(pinned.epoch(), epoch_e);
  EXPECT_EQ(viz::ExportDot(pinned), dot_at_e);
  EXPECT_EQ(viz::ExportDot(server->database().AtEpoch(epoch_e)), dot_at_e);

  // Rollback restores the strict tables without restart: a fresh read
  // reproduces the epoch-E rendering exactly.
  const std::string rolled = session->Execute("policy-rollback");
  ASSERT_EQ(rolled.rfind("ok rolled back to version 1", 0), 0u) << rolled;
  EXPECT_EQ(session->Execute("viz dot"), dot_at_e);
}

TEST(SessionMuxPolicyTest, RollbackRestoresPropagationOracle) {
  auto server = MakeEdtcServer();
  SessionMux mux(*server);
  auto session = mux.Connect("admin");

  ASSERT_EQ(session->Execute("checkin CPU HDL_model \"m1\""),
            "ok CPU,HDL_model,1\n");
  ASSERT_EQ(session->Execute("checkin CPU schematic \"s1\""),
            "ok CPU,schematic,1\n");
  ASSERT_EQ(session->Execute("link derive CPU,HDL_model,1 CPU,schematic,1"),
            "ok\n");

  const auto outofdate = [&] { return session->Execute("query outofdate"); };

  // Strict phase: a new HDL version invalidates the derived schematic.
  ASSERT_EQ(session->Execute("checkin CPU HDL_model \"m2\""),
            "ok CPU,HDL_model,2\n");
  const std::string strict_before = outofdate();
  EXPECT_NE(strict_before.find("<CPU.schematic.1>"), std::string::npos)
      << strict_before;
  // A check-in event on the schematic marks it up to date again.
  session->Execute("postEvent ckin down CPU,schematic,1");
  EXPECT_EQ(outofdate().find("<CPU.schematic.1>"), std::string::npos);

  const uint64_t loose_id = server->PolicyPropose(
      workload::EdtcLoosenedBlueprintText(), "admin", "loosen");
  server->PolicyValidate(loose_id);
  const uint64_t generation_before =
      server->engine().compiled_rules().generation();
  ASSERT_EQ(session->Execute("policy-promote " + std::to_string(loose_id))
                .rfind("ok promoted", 0),
            0u);
  EXPECT_GT(server->engine().compiled_rules().generation(), generation_before);
  EXPECT_EQ(server->engine().policy_version(), loose_id);

  // Loosened phase: the identical mutation no longer propagates.
  ASSERT_EQ(session->Execute("checkin CPU HDL_model \"m3\""),
            "ok CPU,HDL_model,3\n");
  EXPECT_EQ(outofdate().find("<CPU.schematic.1>"), std::string::npos);

  // Rollback, then the identical mutation propagates exactly as it did
  // before the promote — the before/after oracle for restored tables.
  ASSERT_EQ(session->Execute("policy-rollback")
                .rfind("ok rolled back to version 1", 0),
            0u);
  EXPECT_EQ(server->engine().policy_version(), 1u);
  ASSERT_EQ(session->Execute("checkin CPU HDL_model \"m4\""),
            "ok CPU,HDL_model,4\n");
  EXPECT_EQ(outofdate(), strict_before);
}

// --- Documentation drift --------------------------------------------------

TEST(SessionMuxDocsTest, ReadmeCarriesTheGeneratedCommandTable) {
  std::ifstream readme(std::string(DAMOCLES_SOURCE_DIR) + "/README.md");
  ASSERT_TRUE(readme.is_open()) << "README.md not found next to sources";
  std::stringstream buffer;
  buffer << readme.rdbuf();
  const std::string text = buffer.str();

  // The README's wire-command table is the generated table verbatim —
  // regenerate with WireCommandMarkdownTable() when commands change.
  for (const WireCommandInfo& info : WireCommands()) {
    EXPECT_NE(text.find("`" + std::string(info.usage) + "`"),
              std::string::npos)
        << "README.md is missing the usage line for '" << info.name << "'";
  }
  EXPECT_NE(text.find(WireCommandMarkdownTable()), std::string::npos)
      << "README.md command table drifted from WireCommandMarkdownTable()";
}

}  // namespace
}  // namespace damocles::engine
