#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace damocles {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   \t\n"), "");
}

TEST(Trim, PreservesInnerWhitespace) {
  EXPECT_EQ(Trim("  a b  c "), "a b  c");
}

TEST(Split, BasicCommaSplit) {
  const auto pieces = Split("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Split, PreservesEmptyPieces) {
  const auto pieces = Split("a,,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(Split, TrimsEachPiece) {
  const auto pieces = Split(" a , b ", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(Split, SinglePieceWithoutSeparator) {
  const auto pieces = Split("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(SplitWhitespace, SkipsRuns) {
  const auto pieces = SplitWhitespace("  a\t\tb \n c  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Join, RoundTripsSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("postEvent ckin", "postEvent"));
  EXPECT_FALSE(StartsWith("post", "postEvent"));
  EXPECT_TRUE(EndsWith("netlister.sh", ".sh"));
  EXPECT_FALSE(EndsWith("sh", "netlister.sh"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("CkIn"), "ckin");
  EXPECT_EQ(ToLower("abc123"), "abc123");
}

TEST(QuoteString, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(QuoteString("plain"), "\"plain\"");
  EXPECT_EQ(QuoteString("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(QuoteString("back\\slash"), "\"back\\\\slash\"");
}

TEST(UnquoteString, RoundTripsQuote) {
  const std::string original = "a \"b\" \\ c";
  const std::string quoted = QuoteString(original);
  size_t pos = 0;
  std::string out;
  ASSERT_TRUE(UnquoteString(quoted, pos, out));
  EXPECT_EQ(out, original);
  EXPECT_EQ(pos, quoted.size());
}

TEST(UnquoteString, FailsOnUnterminated) {
  size_t pos = 0;
  std::string out;
  EXPECT_FALSE(UnquoteString("\"never closed", pos, out));
}

TEST(UnquoteString, FailsWhenNotAtQuote) {
  size_t pos = 0;
  std::string out;
  EXPECT_FALSE(UnquoteString("plain", pos, out));
}

TEST(IsIdentifier, AcceptsTypicalNames) {
  EXPECT_TRUE(IsIdentifier("ckin"));
  EXPECT_TRUE(IsIdentifier("HDL_model"));
  EXPECT_TRUE(IsIdentifier("netlister.sh"));
  EXPECT_TRUE(IsIdentifier("_hidden"));
  EXPECT_TRUE(IsIdentifier("a-b"));
}

TEST(IsIdentifier, RejectsMalformed) {
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("4errors"));
  EXPECT_FALSE(IsIdentifier("has space"));
  EXPECT_FALSE(IsIdentifier(".dot"));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(ReplaceAll("a,b,a", "a", "x"), "x,b,x");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

/// Property sweep: Join(Split(s)) is identity for separator-free pieces.
class SplitJoinRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SplitJoinRoundTrip, Identity) {
  const std::string text = GetParam();
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

INSTANTIATE_TEST_SUITE_P(Cases, SplitJoinRoundTrip,
                         ::testing::Values("a,b,c", "one", "x,y", "a,b,c,d,e",
                                           "alpha,beta,gamma"));

}  // namespace
}  // namespace damocles
