#include "query/query.hpp"

#include <gtest/gtest.h>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "query/report.hpp"
#include "test_util.hpp"
#include "tools/scheduler.hpp"
#include "workload/edtc.hpp"

namespace damocles::query {
namespace {

using metadb::Oid;
using testutil::MakeEdtcServer;

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : server_(MakeEdtcServer()) {
    server_->CheckIn("CPU", "HDL_model", "m1", "alice");
    server_->CheckIn("CPU", "HDL_model", "m2", "alice");
    server_->CheckIn("CPU", "schematic", "s1", "bob");
    server_->CheckIn("REG", "schematic", "s1", "bob");
    server_->RegisterLink(metadb::LinkKind::kUse,
                          Oid{"CPU", "schematic", 1},
                          Oid{"REG", "schematic", 1});
    server_->RegisterLink(metadb::LinkKind::kDerive,
                          Oid{"CPU", "HDL_model", 2},
                          Oid{"CPU", "schematic", 1});
  }

  std::unique_ptr<engine::ProjectServer> server_;
};

TEST_F(QueryTest, FindByViewSorted) {
  ProjectQuery q(server_->database());
  const auto matches = q.FindByView("schematic");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].oid.block, "CPU");
  EXPECT_EQ(matches[1].oid.block, "REG");
}

TEST_F(QueryTest, FindByBlockAllViews) {
  ProjectQuery q(server_->database());
  const auto matches = q.FindByBlock("CPU");
  EXPECT_EQ(matches.size(), 3u);  // HDL_model v1+v2, schematic v1.
}

TEST_F(QueryTest, FindByProperty) {
  ProjectQuery q(server_->database());
  const auto good = q.FindByProperty("uptodate", "true");
  EXPECT_EQ(good.size(), 4u);
  const auto bad = q.FindByProperty("uptodate", "false");
  EXPECT_TRUE(bad.empty());
}

TEST_F(QueryTest, FindWhereArbitraryPredicate) {
  ProjectQuery q(server_->database());
  const auto v2s = q.FindWhere([](const metadb::MetaObject& object) {
    return object.oid.version == 2;
  });
  ASSERT_EQ(v2s.size(), 1u);
  EXPECT_EQ(v2s[0].oid, (Oid{"CPU", "HDL_model", 2}));
}

TEST_F(QueryTest, FindMatchingBlueprintExpression) {
  // Reuse the blueprint expression engine for ad-hoc queries.
  const auto bp = blueprint::ParseBlueprint(
      "blueprint q view v let hit = ($view == schematic) and "
      "($uptodate == true) endview endblueprint");
  ProjectQuery q(server_->database());
  const auto matches = q.FindMatching(bp.views[0].assignments[0].expr);
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(QueryTest, LatestVersionsPicksNewest) {
  ProjectQuery q(server_->database());
  const auto latest = q.LatestVersions(nullptr);
  ASSERT_EQ(latest.size(), 3u);  // CPU.HDL_model.2, CPU.schematic, REG.schematic.
  for (const Match& match : latest) {
    if (match.oid.block == "CPU" && match.oid.view == "HDL_model") {
      EXPECT_EQ(match.oid.version, 2);
    }
  }
}

TEST_F(QueryTest, OutOfDateAfterInvalidation) {
  server_->CheckIn("CPU", "HDL_model", "m3", "alice");  // Posts outofdate.
  ProjectQuery q(server_->database());
  const auto stale = q.OutOfDate();
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_EQ(stale[0].oid, (Oid{"CPU", "schematic", 1}));
  EXPECT_EQ(stale[1].oid, (Oid{"REG", "schematic", 1}));
}

TEST_F(QueryTest, StateOfReportsContinuousAssignment) {
  ProjectQuery q(server_->database());
  const auto state = q.StateOf(Oid{"CPU", "schematic", 1});
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(*state, "false");  // nl_sim_res is still 'bad'.
  EXPECT_FALSE(q.StateOf(Oid{"CPU", "HDL_model", 1}).has_value());
  EXPECT_THROW(q.StateOf(Oid{"no", "such", 1}), NotFoundError);
}

TEST_F(QueryTest, DistanceToPlannedState) {
  ProjectQuery q(server_->database());
  const auto blockers = q.DistanceToPlannedState(
      {{"sim_result", "good"}, {"uptodate", "true"}}, {"HDL_model"});
  ASSERT_EQ(blockers.size(), 1u);
  EXPECT_EQ(blockers[0].oid, (Oid{"CPU", "HDL_model", 2}));
  EXPECT_EQ(blockers[0].property, "sim_result");
  EXPECT_EQ(blockers[0].actual_value, "bad");
}

TEST_F(QueryTest, PlannedStateScopesAllViewsWhenEmpty) {
  ProjectQuery q(server_->database());
  const auto blockers = q.DistanceToPlannedState({{"uptodate", "true"}}, {});
  EXPECT_TRUE(blockers.empty());  // Everything is up to date initially.
}

TEST_F(QueryTest, HierarchyMembersFollowsUseLinksOnly) {
  ProjectQuery q(server_->database());
  const auto members = q.HierarchyMembers(Oid{"CPU", "schematic", 1});
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].oid.block, "CPU");
  EXPECT_EQ(members[1].oid.block, "REG");
  EXPECT_THROW(q.HierarchyMembers(Oid{"no", "such", 1}), NotFoundError);
}

TEST_F(QueryTest, DerivationSourcesWalksUpstream) {
  ProjectQuery q(server_->database());
  const auto sources = q.DerivationSources(Oid{"CPU", "schematic", 1});
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0].oid, (Oid{"CPU", "HDL_model", 2}));
}

TEST_F(QueryTest, QueryResultsBecomeConfigurations) {
  ProjectQuery q(server_->database());
  const auto matches = q.FindByView("schematic");
  metadb::Configuration config = q.ToConfiguration("schematics", matches, 42);
  EXPECT_EQ(config.oids.size(), 2u);
  EXPECT_EQ(config.created_at, 42);
  // Storable and retrievable.
  auto& db = const_cast<metadb::MetaDatabase&>(server_->database());
  const auto id = db.SaveConfiguration(std::move(config));
  EXPECT_EQ(db.GetConfiguration(id).name, "schematics");
}

TEST_F(QueryTest, ReportCountsAndFormats) {
  server_->CheckIn("CPU", "HDL_model", "m3", "alice");
  const ProjectReport report = BuildProjectReport(server_->database());
  EXPECT_EQ(report.total, 3u);
  EXPECT_EQ(report.out_of_date, 2u);

  const std::string text = FormatProjectReport(report);
  EXPECT_NE(text.find("<CPU.schematic.1>"), std::string::npos);
  EXPECT_NE(text.find("out-of-date 2"), std::string::npos);
}

TEST_F(QueryTest, BlockersFormatting) {
  ProjectQuery q(server_->database());
  const auto blockers = q.DistanceToPlannedState(
      {{"sim_result", "good"}}, {"HDL_model"});
  const std::string text = FormatBlockers(blockers);
  EXPECT_NE(text.find("sim_result"), std::string::npos);
  EXPECT_NE(text.find("needs 'good'"), std::string::npos);
  EXPECT_EQ(FormatBlockers({}), "planned state reached: no blockers\n");
}

}  // namespace
}  // namespace damocles::query
