#include <gtest/gtest.h>

#include "common/error.hpp"
#include "metadb/config_builder.hpp"
#include "metadb/meta_database.hpp"
#include "metadb/workspace.hpp"

namespace damocles::metadb {
namespace {

// --- Configuration builders ---------------------------------------------------

class ConfigBuilderTest : public ::testing::Test {
 protected:
  // A small two-level schematic hierarchy with one derived netlist:
  //   top -> {a, b} (use links); top -> top_netlist (derive link).
  void SetUp() override {
    top_ = db_.CreateNextVersion("top", "schematic", "t", 1);
    a_ = db_.CreateNextVersion("a", "schematic", "t", 2);
    b_ = db_.CreateNextVersion("b", "schematic", "t", 3);
    netlist_ = db_.CreateNextVersion("top", "netlist", "t", 4);
    db_.CreateLink(LinkKind::kUse, top_, a_, {"outofdate"}, "", {});
    db_.CreateLink(LinkKind::kUse, top_, b_, {"outofdate"}, "", {});
    db_.CreateLink(LinkKind::kDerive, top_, netlist_, {"outofdate"},
                   "derive_from", {});
  }

  MetaDatabase db_;
  OidId top_, a_, b_, netlist_;
};

TEST_F(ConfigBuilderTest, HierarchyTraversalUseLinksOnly) {
  TraversalRules rules;  // Defaults: use links only.
  const Configuration config =
      BuildHierarchyConfiguration(db_, top_, "snap", rules, 10);
  EXPECT_EQ(config.oids.size(), 3u);  // top, a, b — not the netlist.
  EXPECT_EQ(config.links.size(), 2u);
  EXPECT_EQ(config.created_at, 10);
}

TEST_F(ConfigBuilderTest, HierarchyTraversalWithDeriveLinks) {
  TraversalRules rules;
  rules.follow_derive_links = true;
  const Configuration config =
      BuildHierarchyConfiguration(db_, top_, "snap", rules, 10);
  EXPECT_EQ(config.oids.size(), 4u);
  EXPECT_EQ(config.links.size(), 3u);
}

TEST_F(ConfigBuilderTest, DeriveTypeFilter) {
  TraversalRules rules;
  rules.follow_derive_links = true;
  rules.derive_types = {"equivalence"};  // No match for derive_from.
  const Configuration config =
      BuildHierarchyConfiguration(db_, top_, "snap", rules, 10);
  EXPECT_EQ(config.oids.size(), 3u);
}

TEST_F(ConfigBuilderTest, MaxDepthLimitsDescent) {
  TraversalRules rules;
  rules.max_depth = 0;
  const Configuration config =
      BuildHierarchyConfiguration(db_, top_, "snap", rules, 10);
  EXPECT_EQ(config.oids.size(), 1u);  // Root only.
}

TEST_F(ConfigBuilderTest, CyclesAreTolerated) {
  // b -> top closes a use-link cycle; traversal must terminate.
  db_.CreateLink(LinkKind::kUse, b_, top_, {}, "", {});
  TraversalRules rules;
  const Configuration config =
      BuildHierarchyConfiguration(db_, top_, "snap", rules, 10);
  EXPECT_EQ(config.oids.size(), 3u);
}

TEST_F(ConfigBuilderTest, QueryConfiguration) {
  db_.SetProperty(a_, "uptodate", "false");
  const Configuration config = BuildQueryConfiguration(
      db_, "stale", [&](OidId, const MetaObject& object) {
        return object.PropertyOr("uptodate", "") == "false";
      },
      20);
  ASSERT_EQ(config.oids.size(), 1u);
  EXPECT_EQ(config.oids[0], a_);
  EXPECT_EQ(config.built_from, "query");
}

TEST_F(ConfigBuilderTest, FullSnapshotCoversEverything) {
  const Configuration config = BuildFullCheckpoint(db_, "all", 30);
  EXPECT_EQ(config.oids.size(), 4u);
  EXPECT_EQ(config.links.size(), 3u);
}

TEST_F(ConfigBuilderTest, DiffFindsAddedAndRemoved) {
  const Configuration before = BuildFullCheckpoint(db_, "before", 1);
  const OidId extra = db_.CreateNextVersion("c", "schematic", "t", 5);
  db_.DeleteObject(a_);
  const Configuration after = BuildFullCheckpoint(db_, "after", 2);

  const auto diff = ConfigurationDiff(before, after);
  // 'extra' appears only in after; 'a_' only in before.
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_TRUE((diff[0] == extra && diff[1] == a_) ||
              (diff[0] == a_ && diff[1] == extra));
}

TEST_F(ConfigBuilderTest, DiffOfIdenticalSnapshotsIsEmpty) {
  const Configuration s1 = BuildFullCheckpoint(db_, "s1", 1);
  const Configuration s2 = BuildFullCheckpoint(db_, "s2", 2);
  EXPECT_TRUE(ConfigurationDiff(s1, s2).empty());
}

// --- Workspace ---------------------------------------------------------------------

TEST(Workspace, CheckInCreatesSequentialVersions) {
  Workspace ws("test");
  const Oid v1 = ws.CheckIn("cpu", "hdl", "model v1", "alice", 1);
  const Oid v2 = ws.CheckIn("cpu", "hdl", "model v2", "alice", 2);
  EXPECT_EQ(v1.version, 1);
  EXPECT_EQ(v2.version, 2);
  EXPECT_EQ(ws.LatestVersion("cpu", "hdl"), 2);
  EXPECT_EQ(ws.Read(v1)->content, "model v1");
  EXPECT_EQ(ws.Read(v2)->content, "model v2");
}

TEST(Workspace, CheckOutBlocksOtherUsers) {
  Workspace ws("test");
  ws.CheckIn("cpu", "hdl", "v1", "alice", 1);
  ws.CheckOut("cpu", "hdl", "alice", 2);
  EXPECT_EQ(ws.CheckedOutBy("cpu", "hdl"), "alice");
  EXPECT_THROW(ws.CheckOut("cpu", "hdl", "bob", 3), PermissionError);
  EXPECT_THROW(ws.CheckIn("cpu", "hdl", "v2", "bob", 3), PermissionError);
  // The holder may re-checkout and check in.
  EXPECT_NO_THROW(ws.CheckOut("cpu", "hdl", "alice", 4));
  EXPECT_NO_THROW(ws.CheckIn("cpu", "hdl", "v2", "alice", 5));
  EXPECT_EQ(ws.CheckedOutBy("cpu", "hdl"), "");
}

TEST(Workspace, CheckOutUnknownThrows) {
  Workspace ws("test");
  EXPECT_THROW(ws.CheckOut("ghost", "hdl", "alice", 1), NotFoundError);
}

TEST(Workspace, DeleteRollsBackLatest) {
  Workspace ws("test");
  ws.CheckIn("cpu", "hdl", "v1", "alice", 1);
  const Oid v2 = ws.CheckIn("cpu", "hdl", "v2", "alice", 2);
  ws.Delete(v2, "alice", 3);
  EXPECT_EQ(ws.LatestVersion("cpu", "hdl"), 1);
  EXPECT_FALSE(ws.Read(v2).has_value());
}

TEST(Workspace, DeleteLastVersionForgetsPair) {
  Workspace ws("test");
  const Oid v1 = ws.CheckIn("cpu", "hdl", "v1", "alice", 1);
  ws.Delete(v1, "alice", 2);
  EXPECT_EQ(ws.LatestVersion("cpu", "hdl"), 0);
}

TEST(Workspace, DeleteUnknownThrows) {
  Workspace ws("test");
  EXPECT_THROW(ws.Delete(Oid{"cpu", "hdl", 1}, "alice", 1), NotFoundError);
}

TEST(Workspace, ObserversSeeTransactions) {
  Workspace ws("test");
  std::vector<std::string> log;
  ws.AddObserver([&](const WorkspaceNotification& note) {
    log.push_back(std::string(WorkspaceActionName(note.action)) + " " +
                  FormatOid(note.oid) + " by " + note.user);
  });
  ws.CheckIn("cpu", "hdl", "v1", "alice", 1);
  ws.CheckOut("cpu", "hdl", "bob", 2);
  ws.CheckIn("cpu", "hdl", "v2", "bob", 3);

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "checkin <cpu.hdl.1> by alice");
  EXPECT_EQ(log[1], "checkout <cpu.hdl.1> by bob");
  EXPECT_EQ(log[2], "checkin <cpu.hdl.2> by bob");
}

TEST(Workspace, ForEachFileVisitsAllVersions) {
  Workspace ws("test");
  ws.CheckIn("cpu", "hdl", "v1", "alice", 1);
  ws.CheckIn("cpu", "hdl", "v2", "alice", 2);
  ws.CheckIn("reg", "hdl", "v1", "bob", 3);
  size_t count = 0;
  ws.ForEachFile([&](const Oid&, const DesignFile&) { ++count; });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(ws.FileCount(), 3u);
}

}  // namespace
}  // namespace damocles::metadb
