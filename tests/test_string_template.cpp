#include "blueprint/string_template.hpp"

#include <gtest/gtest.h>

#include <map>

namespace damocles::blueprint {
namespace {

VariableResolver MapResolver(std::map<std::string, std::string> values) {
  return [values = std::move(values)](std::string_view name) -> std::string {
    const auto it = values.find(std::string(name));
    return it == values.end() ? std::string() : it->second;
  };
}

TEST(StringTemplate, PureLiteral) {
  const StringTemplate tmpl = StringTemplate::Parse("no variables here");
  EXPECT_TRUE(tmpl.IsPureLiteral());
  EXPECT_EQ(tmpl.Expand(MapResolver({})), "no variables here");
}

TEST(StringTemplate, ThePaperNotifyExample) {
  const StringTemplate tmpl =
      StringTemplate::Parse("$owner: Your oid $OID has been modified");
  const std::string result = tmpl.Expand(MapResolver(
      {{"owner", "alice"}, {"OID", "<cpu.hdl.3>"}}));
  EXPECT_EQ(result, "alice: Your oid <cpu.hdl.3> has been modified");
}

TEST(StringTemplate, UnknownVariablesExpandEmpty) {
  const StringTemplate tmpl = StringTemplate::Parse("[$missing]");
  EXPECT_EQ(tmpl.Expand(MapResolver({})), "[]");
}

TEST(StringTemplate, DollarDollarEscapesLiteralDollar) {
  const StringTemplate tmpl = StringTemplate::Parse("cost $$5 and $x");
  EXPECT_EQ(tmpl.Expand(MapResolver({{"x", "tax"}})), "cost $5 and tax");
}

TEST(StringTemplate, LoneDollarStaysLiteral) {
  const StringTemplate tmpl = StringTemplate::Parse("100$ ");
  EXPECT_EQ(tmpl.Expand(MapResolver({})), "100$ ");
}

TEST(StringTemplate, AdjacentVariables) {
  const StringTemplate tmpl = StringTemplate::Parse("$a$b");
  EXPECT_EQ(tmpl.Expand(MapResolver({{"a", "x"}, {"b", "y"}})), "xy");
}

TEST(StringTemplate, VariableNamesStopAtNonWordChars) {
  const StringTemplate tmpl = StringTemplate::Parse("$oid.changed");
  EXPECT_EQ(tmpl.Expand(MapResolver({{"oid", "cpu,hdl,1"}})),
            "cpu,hdl,1.changed");
}

TEST(StringTemplate, VariableFactory) {
  const StringTemplate tmpl = StringTemplate::Variable("arg");
  EXPECT_FALSE(tmpl.IsPureLiteral());
  EXPECT_EQ(tmpl.source(), "$arg");
  EXPECT_EQ(tmpl.Expand(MapResolver({{"arg", "good"}})), "good");
}

TEST(StringTemplate, LiteralFactory) {
  const StringTemplate tmpl = StringTemplate::Literal("plain $notavar");
  EXPECT_TRUE(tmpl.IsPureLiteral());
  EXPECT_EQ(tmpl.Expand(MapResolver({{"notavar", "x"}})), "plain $notavar");
}

TEST(StringTemplate, VariableNamesListsInOrder) {
  const StringTemplate tmpl = StringTemplate::Parse("$b then $a then $b");
  const auto names = tmpl.VariableNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
  EXPECT_EQ(names[2], "b");
}

TEST(StringTemplate, EmptyTemplate) {
  const StringTemplate tmpl = StringTemplate::Parse("");
  EXPECT_TRUE(tmpl.IsPureLiteral());
  EXPECT_EQ(tmpl.Expand(MapResolver({})), "");
}

}  // namespace
}  // namespace damocles::blueprint
