#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace damocles {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = rng.UniformInt(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.UniformInt(5, 4), Error);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.UniformDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.03);
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, WeightedIndexThrowsOnBadInput) {
  Rng rng(19);
  EXPECT_THROW(rng.WeightedIndex({}), Error);
  EXPECT_THROW(rng.WeightedIndex({0.0, 0.0}), Error);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(23);
  int counts[2] = {0, 0};
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.WeightedIndex({3.0, 1.0})];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / kTrials, 0.75, 0.03);
}

TEST(Rng, IdentifierHasPrefixAndSuffix) {
  Rng rng(29);
  const std::string id = rng.Identifier("blk");
  EXPECT_EQ(id.rfind("blk_", 0), 0u);
  EXPECT_EQ(id.size(), 8u);  // "blk_" + 4 hex chars.
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::set<size_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 49u);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

/// Determinism sweep across seeds: each seed reproduces its own stream.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, Reproducible) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xdeadbeefull,
                                           ~0ull));

}  // namespace
}  // namespace damocles
