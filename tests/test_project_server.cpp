#include "engine/project_server.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"

namespace damocles::engine {
namespace {

using metadb::Oid;
using testutil::LatestProp;
using testutil::MakeEdtcServer;

TEST(ProjectServer, CheckInRegistersMetaDataAndPostsCkin) {
  auto server = MakeEdtcServer();
  const Oid oid = server->CheckIn("CPU", "HDL_model", "content", "alice");
  EXPECT_EQ(oid, (Oid{"CPU", "HDL_model", 1}));

  // Meta-object exists with templated properties.
  const auto id = server->database().FindObject(oid);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*server->database().GetProperty(*id, "uptodate"), "true");
  EXPECT_EQ(*server->database().GetProperty(*id, "sim_result"), "bad");

  // The ckin event went through the engine.
  EXPECT_EQ(server->engine().stats().external_events, 1u);
  EXPECT_EQ(server->engine().journal().At(0).event.name, "ckin");
}

TEST(ProjectServer, WireLineIntake) {
  auto server = MakeEdtcServer();
  server->CheckIn("CPU", "HDL_model", "content", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 \"good\"",
                         "alice");
  EXPECT_EQ(LatestProp(*server, "CPU", "HDL_model", "sim_result"), "good");
}

TEST(ProjectServer, MalformedWireLineThrows) {
  auto server = MakeEdtcServer();
  EXPECT_THROW(server->SubmitWireLine("postEvent", "alice"),
               WireFormatError);
}

TEST(ProjectServer, RegisterLinkValidatesEndpoints) {
  auto server = MakeEdtcServer();
  const Oid hdl = server->CheckIn("CPU", "HDL_model", "m", "alice");
  EXPECT_THROW(
      server->RegisterLink(metadb::LinkKind::kDerive, hdl,
                           Oid{"CPU", "schematic", 1}),
      NotFoundError);
  const Oid sch = server->CheckIn("CPU", "schematic", "s", "bob");
  EXPECT_NO_THROW(
      server->RegisterLink(metadb::LinkKind::kDerive, hdl, sch));
}

TEST(ProjectServer, BatchModeQueuesUntilDrain) {
  ServerOptions options;
  options.auto_drain = false;
  auto server = std::make_unique<ProjectServer>("batch", options);
  server->InitializeBlueprint(workload::EdtcBlueprintText());

  server->CheckIn("CPU", "HDL_model", "m", "alice");
  // ckin queued but unprocessed: uptodate not yet assigned by rules —
  // the template default is there, but the journal is empty.
  EXPECT_EQ(server->engine().journal().Size(), 0u);
  EXPECT_EQ(server->engine().queue().Depth(), 1u);

  EXPECT_EQ(server->Drain(), 1u);
  EXPECT_EQ(server->engine().journal().Size(), 1u);
}

TEST(ProjectServer, CheckinDirectionIsConfigurable) {
  ServerOptions options;
  options.checkin_direction = events::Direction::kDown;
  auto server = std::make_unique<ProjectServer>("dir", options);
  server->InitializeBlueprint(workload::EdtcBlueprintText());
  server->CheckIn("CPU", "HDL_model", "m", "alice");
  EXPECT_EQ(server->engine().journal().At(0).event.direction,
            events::Direction::kDown);
}

TEST(ProjectServer, ReinitializeBlueprintBetweenPhases) {
  auto server = MakeEdtcServer();
  tools::HdlEditor editor(*server);
  tools::SynthesisTool synthesis(*server);

  editor.Edit("CPU", "m", "alice");
  server->SubmitWireLine("postEvent hdl_sim up CPU,HDL_model,1 good", "alice");
  ASSERT_TRUE(synthesis.Synthesize("CPU", {}, "bob").has_value());

  // Strict phase: HDL edit invalidates the schematic.
  editor.Edit("CPU", "m2", "alice");
  EXPECT_EQ(LatestProp(*server, "CPU", "schematic", "uptodate"), "false");

  // Re-validate, then loosen the blueprint: the same edit no longer
  // propagates. Existing meta-data (links included) is untouched; the
  // loose rules simply stop posting outofdate on ckin.
  server->CheckIn("CPU", "schematic", "rev", "bob");
  EXPECT_EQ(LatestProp(*server, "CPU", "schematic", "uptodate"), "true");
  server->InitializeBlueprint(workload::EdtcLoosenedBlueprintText());
  editor.Edit("CPU", "m3", "alice");
  EXPECT_EQ(LatestProp(*server, "CPU", "schematic", "uptodate"), "true");
}

TEST(ProjectServer, ClockAdvancesTimestamps) {
  auto server = MakeEdtcServer();
  const Oid v1 = server->CheckIn("CPU", "HDL_model", "m", "alice");
  server->AdvanceClock(1234);
  const Oid v2 = server->CheckIn("CPU", "HDL_model", "m2", "alice");
  const auto& db = server->database();
  EXPECT_EQ(db.GetObject(*db.FindObject(v2)).created_at -
                db.GetObject(*db.FindObject(v1)).created_at,
            1234);
}

TEST(ProjectServer, WorkspaceAndMetaDbVersionsAgree) {
  auto server = MakeEdtcServer();
  for (int i = 0; i < 5; ++i) {
    server->CheckIn("CPU", "HDL_model", "rev" + std::to_string(i), "alice");
  }
  EXPECT_EQ(server->workspace().LatestVersion("CPU", "HDL_model"), 5);
  const auto latest = server->database().FindLatest("CPU", "HDL_model");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(server->database().GetObject(*latest).oid.version, 5);
}

}  // namespace
}  // namespace damocles::engine
