// Versioned policy lifecycle and shadow-wave impact analysis.
//
// Part one exercises the PolicyStore commit chain in isolation:
// propose/validate/promote/rollback transitions, every lifecycle
// violation, and the checkpoint serialization round trip.
//
// Part two is the shadow-wave differential suite the design demands:
// tracing a *proposed* (never promoted) version against a live server
// must leave the journal record multiset, the property state and the
// claim state byte-identical — and the impact report must match an
// oracle that actually promotes the version on an identically
// constructed server and posts the event for real. Both 1-shard and
// 4-shard servers run the differential (the threaded variant also runs
// under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "blueprint/parser.hpp"
#include "common/error.hpp"
#include "engine/project_server.hpp"
#include "events/event.hpp"
#include "events/journal.hpp"
#include "metadb/persistence.hpp"
#include "policy/policy_store.hpp"
#include "policy/shadow_wave.hpp"
#include "query/report.hpp"
#include "test_util.hpp"
#include "workload/edtc.hpp"

namespace damocles {
namespace {

using engine::ProjectServer;
using engine::ServerOptions;
using metadb::Oid;
using policy::PolicyStore;
using policy::PolicyVersionStatus;

constexpr const char* kTinyA = R"(blueprint tiny
view default
  when ckin do checked = yes done
endview
endblueprint)";

constexpr const char* kTinyB = R"(blueprint tiny
view default
  when ckin do checked = yes done
  when edit do edited = yes done
endview
endblueprint)";

// Parses fine but fails static validation (self-link), so Validate
// deterministically records kRejected.
constexpr const char* kSelfLink = R"(blueprint bad
view default
endview
view a
  link_from a propagates ckin type derived
  when ckin do checked = yes done
endview
endblueprint)";

// ---------------------------------------------------------------------------
// PolicyStore lifecycle
// ---------------------------------------------------------------------------

TEST(PolicyStore, LifecycleHappyPath) {
  PolicyStore store;
  EXPECT_EQ(store.active_id(), 0u);
  EXPECT_EQ(store.ActiveBlueprintText(), "");

  const uint64_t a = store.Adopt(kTinyA, "admin", "install");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(store.active_id(), 1u);
  EXPECT_EQ(store.Get(a).status, PolicyVersionStatus::kPromoted);
  EXPECT_EQ(store.ActiveBlueprintText(), kTinyA);

  const uint64_t b = store.Propose(kTinyB, "alice", "add edit rule");
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(store.Get(b).status, PolicyVersionStatus::kProposed);
  EXPECT_EQ(store.Get(b).parent, a);
  EXPECT_EQ(store.Get(b).author, "alice");
  EXPECT_EQ(store.active_id(), a) << "a proposal must not change the binding";

  const blueprint::ValidationReport report = store.Validate(b);
  EXPECT_FALSE(report.HasErrors());
  EXPECT_EQ(store.Get(b).status, PolicyVersionStatus::kValidated);

  const policy::PolicyVersion active = store.Promote(b);
  EXPECT_EQ(active.id, b);
  EXPECT_EQ(store.active_id(), b);
  EXPECT_EQ(store.Get(a).status, PolicyVersionStatus::kSuperseded);
  EXPECT_EQ(store.PromotedChain(), (std::vector<uint64_t>{1, 2}));

  const policy::PolicyVersion back = store.Rollback();
  EXPECT_EQ(back.id, a);
  EXPECT_EQ(store.active_id(), a);
  EXPECT_EQ(store.Get(b).status, PolicyVersionStatus::kRolledBack);
  EXPECT_EQ(store.PromotedChain(), (std::vector<uint64_t>{1}));

  // Roll forward: a rolled-back version is eligible for re-promotion.
  store.Promote(b);
  EXPECT_EQ(store.active_id(), b);
  EXPECT_EQ(store.Get(a).status, PolicyVersionStatus::kSuperseded);
}

TEST(PolicyStore, LifecycleViolationsThrowAndLeaveStoreUnchanged) {
  PolicyStore store;
  store.Adopt(kTinyA, "admin", "install");
  const uint64_t b = store.Propose(kTinyB, "alice", "change");

  EXPECT_THROW(store.Promote(b), IntegrityError) << "promote before validate";
  EXPECT_THROW(store.Promote(999), NotFoundError);
  EXPECT_THROW(store.Validate(999), NotFoundError);
  EXPECT_THROW(store.Get(999), NotFoundError);
  EXPECT_THROW(store.Propose("blueprint broken\nview x", "x", "y"),
               ParseError);

  store.Validate(b);
  store.Promote(b);
  EXPECT_THROW(store.Promote(b), IntegrityError) << "already active";
  EXPECT_THROW(store.Validate(b), IntegrityError) << "moved past validation";

  store.Rollback();
  EXPECT_THROW(store.Rollback(), IntegrityError)
      << "the root install cannot be rolled back";

  // Validation records a rejection; a rejected version is terminal.
  const uint64_t bad = store.Propose(kSelfLink, "bob", "oops");
  EXPECT_TRUE(store.Validate(bad).HasErrors());
  EXPECT_EQ(store.Get(bad).status, PolicyVersionStatus::kRejected);
  EXPECT_THROW(store.Promote(bad), IntegrityError);

  // All of the throws above left the chain intact.
  EXPECT_EQ(store.active_id(), 1u);
  EXPECT_EQ(store.PromotedChain(), (std::vector<uint64_t>{1}));
  EXPECT_EQ(store.size(), 3u);
}

TEST(PolicyStore, SerializeRoundTrip) {
  PolicyStore store;
  store.Adopt(kTinyA, "admin", "install");
  // Quoting must survive embedded quotes and newlines.
  const uint64_t b =
      store.Propose(kTinyB, "alice smith", "line one\nline \"two\"");
  store.Validate(b);
  store.Promote(b);
  const uint64_t c = store.Propose(kTinyA, "carol", "pending");
  store.Validate(c);
  const uint64_t bad = store.Propose(kSelfLink, "bob", "rejected one");
  store.Validate(bad);
  store.Rollback();

  const std::string text = store.SerializeText();
  PolicyStore other;
  other.RestoreFromText(text);
  EXPECT_EQ(other.SerializeText(), text);
  EXPECT_EQ(other.active_id(), store.active_id());
  EXPECT_EQ(other.PromotedChain(), store.PromotedChain());
  EXPECT_EQ(other.size(), store.size());
  EXPECT_EQ(other.Get(b).message, "line one\nline \"two\"");
  EXPECT_EQ(other.Get(b).status, PolicyVersionStatus::kRolledBack);
  EXPECT_EQ(other.Get(bad).status, PolicyVersionStatus::kRejected);

  // next-id survives: a new proposal cannot reuse an id.
  EXPECT_EQ(other.Propose(kTinyB, "dave", "next"), store.size() + 1);
}

TEST(PolicyStore, RestoreRejectsMalformedInputAtomically) {
  PolicyStore store;
  store.Adopt(kTinyA, "admin", "install");
  const std::string good = store.SerializeText();

  PolicyStore target;
  target.RestoreFromText(good);
  for (const char* bad : {
           "",
           "nonsense v1\n",
           "policystore v2\nnext-id 1\nstack 0\nend\n",
           "policystore v1\nnext-id",
           "policystore v1\nnext-id 3\nstack 1 1\nversion 1 0 promoted",
       }) {
    EXPECT_THROW(target.RestoreFromText(bad), WireFormatError) << bad;
    EXPECT_EQ(target.SerializeText(), good)
        << "failed restore must leave the store untouched";
  }
}

// ---------------------------------------------------------------------------
// Shadow waves
// ---------------------------------------------------------------------------

/// CPU design hierarchy under whatever blueprint is installed:
/// HDL_model -> CPU.schematic -> {netlist, layout}, plus a use-link
/// from CPU.schematic to REG.schematic. One claim is held so the
/// differential also covers claim state.
void BuildHierarchy(ProjectServer& server) {
  const Oid hdl = server.CheckIn("CPU", "HDL_model", "entity cpu", "dana");
  const Oid cpu_sch = server.CheckIn("CPU", "schematic", "cpu sch", "dana");
  const Oid reg_sch = server.CheckIn("REG", "schematic", "reg sch", "dana");
  const Oid netlist = server.CheckIn("CPU", "netlist", "cpu nl", "dana");
  const Oid layout = server.CheckIn("CPU", "layout", "cpu gds", "dana");
  server.RegisterLink(metadb::LinkKind::kDerive, hdl, cpu_sch);
  server.RegisterLink(metadb::LinkKind::kDerive, cpu_sch, netlist);
  server.RegisterLink(metadb::LinkKind::kDerive, cpu_sch, layout);
  server.RegisterLink(metadb::LinkKind::kUse, cpu_sch, reg_sch);
  server.CheckOut("CPU", "layout", "dana");  // Live claim.
  server.Drain();
}

std::vector<std::string> CaptureJournal(ProjectServer& server) {
  std::vector<std::string> lines;
  if (server.is_sharded()) {
    lines = server.sharded_engine()->JournalLines();
  } else {
    const events::EventJournal& journal = server.engine().journal();
    for (size_t i = 0; i < journal.Size(); ++i) {
      const events::JournalRecord record = journal.At(i);
      lines.push_back(
          "[" + std::string(events::EventOriginName(record.event.origin)) +
          "] " + events::FormatEvent(record.event));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::set<std::string> PathTargets(const policy::ShadowWaveReport& report) {
  std::set<std::string> out;
  for (const policy::ShadowWavePath& path : report.paths) {
    out.insert(metadb::FormatOid(path.target));
  }
  return out;
}

/// The differential: shadow-trace a proposed (never promoted) version
/// against a live server, prove zero side effects, then check the
/// impact set against an oracle that promotes for real.
void RunShadowWaveDifferential(uint32_t shards) {
  ServerOptions options;
  options.num_shards = shards;
  auto server = std::make_unique<ProjectServer>("edtc", options);
  server->InitializeBlueprint(workload::EdtcLoosenedBlueprintText());
  BuildHierarchy(*server);

  const uint64_t proposed_id = server->PolicyPropose(
      workload::EdtcBlueprintText(), "admin", "tighten for tapeout");
  server->PolicyValidate(proposed_id);

  const std::vector<std::string> journal0 = CaptureJournal(*server);
  const std::string db0 = metadb::SaveDatabaseString(server->database());
  const std::string ws0 = metadb::SaveWorkspaceText(server->workspace());
  const std::string policy0 = server->policy_store().SerializeText();
  const uint64_t generation0 = server->engine().compiled_rules().generation();
  const uint64_t bound0 = server->engine().policy_version();

  const blueprint::Blueprint proposed = blueprint::ParseBlueprint(
      server->policy_store().Get(proposed_id).blueprint_text);
  const Oid start{"CPU", "HDL_model", 1};
  const policy::ShadowWaveReport report =
      policy::TraceShadowWave(server->database(), proposed, proposed_id,
                              "outofdate", events::Direction::kDown, start);
  const std::string formatted = query::FormatShadowWaveReport(report);
  EXPECT_NE(formatted.find("shadow-wave version"), std::string::npos);

  // Side-effect freedom: every observable byte-identical.
  EXPECT_EQ(CaptureJournal(*server), journal0) << shards << " shards";
  EXPECT_EQ(metadb::SaveDatabaseString(server->database()), db0)
      << shards << " shards";
  EXPECT_EQ(metadb::SaveWorkspaceText(server->workspace()), ws0)
      << shards << " shards";
  EXPECT_EQ(server->policy_store().SerializeText(), policy0)
      << shards << " shards";
  EXPECT_EQ(server->engine().compiled_rules().generation(), generation0);
  EXPECT_EQ(server->engine().policy_version(), bound0);

  // Shape: the strict templates reach the schematic directly, then
  // netlist + layout + the used REG schematic transitively — none of
  // which propagate under the installed loosened blueprint.
  EXPECT_EQ(report.version_id, proposed_id);
  EXPECT_EQ(report.direct_count, 1u);
  EXPECT_EQ(report.transitive_count, 3u);
  EXPECT_FALSE(report.truncated);
  const std::set<std::string> impacted = PathTargets(report);
  const std::set<std::string> expected = {
      "<CPU.schematic.1>", "<CPU.netlist.1>", "<CPU.layout.1>",
      "<REG.schematic.1>"};
  EXPECT_EQ(impacted, expected);
  for (const policy::ShadowWavePath& path : report.paths) {
    EXPECT_GE(path.matched_rules, 1u)
        << metadb::FormatOid(path.target)
        << " must at least match the default-view outofdate rule";
    EXPECT_EQ(path.chain.front(), start);
    EXPECT_EQ(path.chain.back(), path.target);
    EXPECT_EQ(path.chain.size(), path.depth + 1);
    EXPECT_EQ(path.direct, path.depth == 1);
  }

  // Oracle: identical construction, then promote for real and post the
  // event. The impacted set is exactly the objects whose uptodate flag
  // flipped (minus the start, which receives the event itself).
  auto oracle = std::make_unique<ProjectServer>("edtc", options);
  oracle->InitializeBlueprint(workload::EdtcLoosenedBlueprintText());
  BuildHierarchy(*oracle);
  ASSERT_EQ(metadb::SaveDatabaseString(oracle->database()), db0)
      << "oracle construction must clone the live database";
  const uint64_t oracle_id = oracle->PolicyPropose(
      workload::EdtcBlueprintText(), "admin", "tighten for tapeout");
  oracle->PolicyValidate(oracle_id);
  oracle->PolicyPromote(oracle_id);

  events::EventMessage event;
  event.name = "outofdate";
  event.direction = events::Direction::kDown;
  event.target = start;
  event.user = "oracle";
  event.timestamp = oracle->clock().NowSeconds();
  oracle->Submit(std::move(event));
  oracle->Drain();

  std::set<std::string> oracle_impacted;
  for (const Oid& oid :
       {Oid{"CPU", "HDL_model", 1}, Oid{"CPU", "schematic", 1},
        Oid{"REG", "schematic", 1}, Oid{"CPU", "netlist", 1},
        Oid{"CPU", "layout", 1}}) {
    if (oid == start) continue;
    if (testutil::Prop(*oracle, oid, "uptodate") == "false") {
      oracle_impacted.insert(metadb::FormatOid(oid));
    }
  }
  EXPECT_EQ(impacted, oracle_impacted)
      << "shadow wave must predict exactly what promotion delivers ("
      << shards << " shards)";
}

TEST(ShadowWave, DifferentialSideEffectFree1Shard) {
  RunShadowWaveDifferential(1);
}

TEST(ShadowWave, DifferentialSideEffectFree4Shard) {
  RunShadowWaveDifferential(4);
}

TEST(ShadowWave, DepthCapTruncatesAndReportsIt) {
  auto server = std::make_unique<ProjectServer>("edtc");
  server->InitializeBlueprint(workload::EdtcLoosenedBlueprintText());
  BuildHierarchy(*server);
  const uint64_t id = server->PolicyPropose(workload::EdtcBlueprintText(),
                                            "admin", "tighten");
  server->PolicyValidate(id);
  const blueprint::Blueprint proposed =
      blueprint::ParseBlueprint(server->policy_store().Get(id).blueprint_text);

  policy::ShadowWaveOptions capped;
  capped.depth_cap = 1;
  const policy::ShadowWaveReport report = policy::TraceShadowWave(
      server->database(), proposed, id, "outofdate",
      events::Direction::kDown, Oid{"CPU", "HDL_model", 1}, capped);
  EXPECT_EQ(report.direct_count, 1u);
  EXPECT_EQ(report.transitive_count, 0u);
  EXPECT_TRUE(report.truncated)
      << "the schematic frontier still had receivers past the cap";
  EXPECT_EQ(PathTargets(report),
            (std::set<std::string>{"<CPU.schematic.1>"}));
}

TEST(ShadowWave, UnknownStartThrows) {
  auto server = testutil::MakeEdtcServer();
  const blueprint::Blueprint proposed =
      blueprint::ParseBlueprint(workload::EdtcBlueprintText());
  EXPECT_THROW(
      policy::TraceShadowWave(server->database(), proposed, 1, "outofdate",
                              events::Direction::kDown,
                              Oid{"NOPE", "HDL_model", 7}),
      NotFoundError);
}

}  // namespace
}  // namespace damocles
