#include "metadb/oid.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.hpp"

namespace damocles::metadb {
namespace {

TEST(Oid, FormatDisplayStyle) {
  EXPECT_EQ(FormatOid(Oid{"cpu", "schematic", 4}), "<cpu.schematic.4>");
}

TEST(Oid, FormatWireStyle) {
  EXPECT_EQ(FormatOidWire(Oid{"reg", "verilog", 4}), "reg,verilog,4");
}

TEST(Oid, ParseWireRoundTrip) {
  const Oid original{"alu", "GDSII", 6};
  EXPECT_EQ(ParseOidWire(FormatOidWire(original)), original);
}

TEST(Oid, ParseWireAcceptsSpaces) {
  EXPECT_EQ(ParseOidWire(" cpu , hdl , 2 "), (Oid{"cpu", "hdl", 2}));
}

TEST(Oid, ParseWireRejectsWrongArity) {
  EXPECT_THROW(ParseOidWire("cpu,hdl"), WireFormatError);
  EXPECT_THROW(ParseOidWire("a,b,c,d"), WireFormatError);
  EXPECT_THROW(ParseOidWire(""), WireFormatError);
}

TEST(Oid, ParseWireRejectsEmptyFields) {
  EXPECT_THROW(ParseOidWire(",hdl,1"), WireFormatError);
  EXPECT_THROW(ParseOidWire("cpu,,1"), WireFormatError);
}

TEST(Oid, ParseWireRejectsBadVersions) {
  EXPECT_THROW(ParseOidWire("cpu,hdl,zero"), WireFormatError);
  EXPECT_THROW(ParseOidWire("cpu,hdl,0"), WireFormatError);
  EXPECT_THROW(ParseOidWire("cpu,hdl,-3"), WireFormatError);
  EXPECT_THROW(ParseOidWire("cpu,hdl,1x"), WireFormatError);
}

TEST(Oid, EqualityIsFullTriplet) {
  const Oid a{"cpu", "hdl", 1};
  EXPECT_EQ(a, (Oid{"cpu", "hdl", 1}));
  EXPECT_NE(a, (Oid{"cpu", "hdl", 2}));
  EXPECT_NE(a, (Oid{"cpu", "netlist", 1}));
  EXPECT_NE(a, (Oid{"reg", "hdl", 1}));
}

TEST(Oid, OrderingIsBlockViewVersion) {
  EXPECT_LT((Oid{"a", "z", 9}), (Oid{"b", "a", 1}));
  EXPECT_LT((Oid{"a", "a", 1}), (Oid{"a", "b", 1}));
  EXPECT_LT((Oid{"a", "a", 1}), (Oid{"a", "a", 2}));
}

TEST(Oid, HashDistinguishesComponents) {
  std::unordered_set<Oid, OidHash> set;
  set.insert(Oid{"cpu", "hdl", 1});
  set.insert(Oid{"cpu", "hdl", 2});
  set.insert(Oid{"cpu", "netlist", 1});
  set.insert(Oid{"reg", "hdl", 1});
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.contains(Oid{"cpu", "hdl", 1}));
  EXPECT_FALSE(set.contains(Oid{"cpu", "hdl", 3}));
}

/// Wire round-trip sweep over representative OIDs.
class OidWireSweep : public ::testing::TestWithParam<Oid> {};

TEST_P(OidWireSweep, RoundTrips) {
  EXPECT_EQ(ParseOidWire(FormatOidWire(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OidWireSweep,
    ::testing::Values(Oid{"cpu", "HDL_model", 1}, Oid{"reg", "verilog", 4},
                      Oid{"alu", "GDSII", 6}, Oid{"top_0_1", "view_9", 123},
                      Oid{"b", "v", 1000000}));

}  // namespace
}  // namespace damocles::metadb
