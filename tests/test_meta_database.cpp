#include "metadb/meta_database.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace damocles::metadb {
namespace {

class MetaDatabaseTest : public ::testing::Test {
 protected:
  OidId Create(const std::string& block, const std::string& view) {
    return db_.CreateNextVersion(block, view, "tester", ++now_);
  }

  MetaDatabase db_;
  int64_t now_ = 0;
};

TEST_F(MetaDatabaseTest, CreateAssignsSequentialVersions) {
  const OidId v1 = Create("cpu", "hdl");
  const OidId v2 = Create("cpu", "hdl");
  EXPECT_EQ(db_.GetObject(v1).oid.version, 1);
  EXPECT_EQ(db_.GetObject(v2).oid.version, 2);
}

TEST_F(MetaDatabaseTest, CreateObjectRejectsDuplicates) {
  db_.CreateObject(Oid{"cpu", "hdl", 1}, "tester", 1);
  EXPECT_THROW(db_.CreateObject(Oid{"cpu", "hdl", 1}, "tester", 2),
               IntegrityError);
}

TEST_F(MetaDatabaseTest, CreateObjectRejectsOutOfSequenceVersions) {
  EXPECT_THROW(db_.CreateObject(Oid{"cpu", "hdl", 2}, "tester", 1),
               IntegrityError);
  db_.CreateObject(Oid{"cpu", "hdl", 1}, "tester", 1);
  EXPECT_THROW(db_.CreateObject(Oid{"cpu", "hdl", 3}, "tester", 2),
               IntegrityError);
}

TEST_F(MetaDatabaseTest, CreateObjectRejectsEmptyNames) {
  EXPECT_THROW(db_.CreateObject(Oid{"", "hdl", 1}, "t", 1), IntegrityError);
  EXPECT_THROW(db_.CreateObject(Oid{"cpu", "", 1}, "t", 1), IntegrityError);
}

TEST_F(MetaDatabaseTest, FindObjectExactTriplet) {
  const OidId id = Create("cpu", "hdl");
  EXPECT_EQ(db_.FindObject(Oid{"cpu", "hdl", 1}), id);
  EXPECT_FALSE(db_.FindObject(Oid{"cpu", "hdl", 2}).has_value());
  EXPECT_FALSE(db_.FindObject(Oid{"cpu", "netlist", 1}).has_value());
}

TEST_F(MetaDatabaseTest, FindLatestSkipsDeleted) {
  Create("cpu", "hdl");
  const OidId v2 = Create("cpu", "hdl");
  const OidId v3 = Create("cpu", "hdl");
  EXPECT_EQ(db_.FindLatest("cpu", "hdl"), v3);
  db_.DeleteObject(v3);
  EXPECT_EQ(db_.FindLatest("cpu", "hdl"), v2);
}

TEST_F(MetaDatabaseTest, FindLatestOfUnknownPair) {
  EXPECT_FALSE(db_.FindLatest("ghost", "hdl").has_value());
}

TEST_F(MetaDatabaseTest, VersionChainOldestFirst) {
  const OidId v1 = Create("cpu", "hdl");
  const OidId v2 = Create("cpu", "hdl");
  const auto chain = db_.VersionChain("cpu", "hdl");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], v1);
  EXPECT_EQ(chain[1], v2);
}

TEST_F(MetaDatabaseTest, PreviousVersionWalksChain) {
  const OidId v1 = Create("cpu", "hdl");
  const OidId v2 = Create("cpu", "hdl");
  EXPECT_EQ(db_.PreviousVersion(v2), v1);
  EXPECT_FALSE(db_.PreviousVersion(v1).has_value());
}

TEST_F(MetaDatabaseTest, PropertiesSetGetRemove) {
  const OidId id = Create("cpu", "hdl");
  EXPECT_EQ(db_.GetProperty(id, "sim_result"), nullptr);
  db_.SetProperty(id, "sim_result", "good");
  ASSERT_NE(db_.GetProperty(id, "sim_result"), nullptr);
  EXPECT_EQ(*db_.GetProperty(id, "sim_result"), "good");
  EXPECT_TRUE(db_.RemoveProperty(id, "sim_result"));
  EXPECT_FALSE(db_.RemoveProperty(id, "sim_result"));
  EXPECT_EQ(db_.GetProperty(id, "sim_result"), nullptr);
}

TEST_F(MetaDatabaseTest, InvalidHandleThrows) {
  EXPECT_THROW(db_.GetObject(OidId(99)), NotFoundError);
  EXPECT_THROW(db_.GetObject(OidId()), NotFoundError);
  EXPECT_THROW(db_.GetLink(LinkId(0)), NotFoundError);
}

TEST_F(MetaDatabaseTest, CreateLinkWiresAdjacency) {
  const OidId hdl = Create("cpu", "hdl");
  const OidId sch = Create("cpu", "schematic");
  const LinkId link = db_.CreateLink(LinkKind::kDerive, hdl, sch,
                                     {"outofdate"}, "derived",
                                     CarryPolicy::kMove);
  ASSERT_EQ(db_.OutLinks(hdl).size(), 1u);
  EXPECT_EQ(db_.OutLinks(hdl)[0], link);
  ASSERT_EQ(db_.InLinks(sch).size(), 1u);
  EXPECT_EQ(db_.InLinks(sch)[0], link);
  EXPECT_TRUE(db_.OutLinks(sch).empty());
  EXPECT_TRUE(db_.InLinks(hdl).empty());
}

TEST_F(MetaDatabaseTest, LinkPropagatesChecksList) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "schematic");
  const LinkId link = db_.CreateLink(LinkKind::kDerive, a, b,
                                     {"outofdate", "lvs"}, "derived",
                                     CarryPolicy::kNone);
  EXPECT_TRUE(db_.GetLink(link).Propagates("outofdate"));
  EXPECT_TRUE(db_.GetLink(link).Propagates("lvs"));
  EXPECT_FALSE(db_.GetLink(link).Propagates("ckin"));
}

TEST_F(MetaDatabaseTest, SelfLinksRejected) {
  const OidId a = Create("cpu", "hdl");
  EXPECT_THROW(db_.CreateLink(LinkKind::kDerive, a, a, {}, "", {}),
               IntegrityError);
}

TEST_F(MetaDatabaseTest, UseLinksRequireSameViewType) {
  const OidId parent = Create("cpu", "schematic");
  const OidId child = Create("reg", "schematic");
  const OidId other = Create("reg", "netlist");
  EXPECT_NO_THROW(db_.CreateLink(LinkKind::kUse, parent, child, {}, "", {}));
  EXPECT_THROW(db_.CreateLink(LinkKind::kUse, parent, other, {}, "", {}),
               IntegrityError);
}

TEST_F(MetaDatabaseTest, DeriveLinksMayCrossViews) {
  const OidId a = Create("cpu", "schematic");
  const OidId b = Create("cpu", "netlist");
  EXPECT_NO_THROW(
      db_.CreateLink(LinkKind::kDerive, a, b, {}, "derive_from", {}));
}

TEST_F(MetaDatabaseTest, DeleteLinkDetachesAdjacency) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "schematic");
  const LinkId link = db_.CreateLink(LinkKind::kDerive, a, b, {}, "", {});
  db_.DeleteLink(link);
  EXPECT_TRUE(db_.OutLinks(a).empty());
  EXPECT_TRUE(db_.InLinks(b).empty());
  EXPECT_FALSE(db_.GetLink(link).alive);
  // Idempotent.
  EXPECT_NO_THROW(db_.DeleteLink(link));
}

TEST_F(MetaDatabaseTest, DeleteObjectRemovesItsLinks) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "schematic");
  const OidId c = Create("cpu", "netlist");
  db_.CreateLink(LinkKind::kDerive, a, b, {}, "", {});
  db_.CreateLink(LinkKind::kDerive, b, c, {}, "", {});
  db_.DeleteObject(b);
  EXPECT_FALSE(db_.GetObject(b).alive);
  EXPECT_TRUE(db_.OutLinks(a).empty());
  EXPECT_TRUE(db_.InLinks(c).empty());
  EXPECT_FALSE(db_.FindObject(Oid{"cpu", "schematic", 1}).has_value());
}

TEST_F(MetaDatabaseTest, MoveLinkEndpointShiftsVersions) {
  // Paper Fig. 3: NetList -> GDSII.v5 becomes NetList -> GDSII.v6.
  const OidId netlist = Create("alu", "NetList");
  const OidId gdsii5 = Create("alu", "GDSII");
  const LinkId link = db_.CreateLink(LinkKind::kDerive, netlist, gdsii5,
                                     {"OutOfDate"}, "derive_from",
                                     CarryPolicy::kMove);
  const OidId gdsii6 = Create("alu", "GDSII");
  db_.MoveLinkEndpoint(link, /*endpoint_from=*/false, gdsii6);

  EXPECT_EQ(db_.GetLink(link).to, gdsii6);
  EXPECT_TRUE(db_.InLinks(gdsii5).empty());
  ASSERT_EQ(db_.InLinks(gdsii6).size(), 1u);
  EXPECT_EQ(db_.InLinks(gdsii6)[0], link);
}

TEST_F(MetaDatabaseTest, MoveLinkEndpointRejectsSelfLink) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "schematic");
  const LinkId link = db_.CreateLink(LinkKind::kDerive, a, b, {}, "", {});
  EXPECT_THROW(db_.MoveLinkEndpoint(link, /*endpoint_from=*/true, b),
               IntegrityError);
}

TEST_F(MetaDatabaseTest, MoveLinkEndpointKeepsUseViewInvariant) {
  const OidId parent = Create("cpu", "schematic");
  const OidId child = Create("reg", "schematic");
  const OidId wrong_view = Create("reg", "netlist");
  const LinkId link =
      db_.CreateLink(LinkKind::kUse, parent, child, {}, "", {});
  EXPECT_THROW(db_.MoveLinkEndpoint(link, /*endpoint_from=*/false, wrong_view),
               IntegrityError);
}

TEST_F(MetaDatabaseTest, ConfigurationsSaveAndLookup) {
  const OidId a = Create("cpu", "hdl");
  Configuration config;
  config.name = "snapshot1";
  config.oids.push_back(a);
  const ConfigId id = db_.SaveConfiguration(config);
  EXPECT_EQ(db_.FindConfiguration("snapshot1"), id);
  EXPECT_EQ(db_.GetConfiguration(id).oids.size(), 1u);
  EXPECT_FALSE(db_.FindConfiguration("missing").has_value());
}

TEST_F(MetaDatabaseTest, ConfigurationReplacedByName) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "netlist");
  Configuration first;
  first.name = "snap";
  first.oids = {a};
  Configuration second;
  second.name = "snap";
  second.oids = {a, b};
  const ConfigId id1 = db_.SaveConfiguration(first);
  const ConfigId id2 = db_.SaveConfiguration(second);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(db_.GetConfiguration(id1).oids.size(), 2u);
}

TEST_F(MetaDatabaseTest, ConfigurationRequiresName) {
  EXPECT_THROW(db_.SaveConfiguration(Configuration{}), IntegrityError);
}

TEST_F(MetaDatabaseTest, ConfigurationValidatesHandles) {
  Configuration config;
  config.name = "bad";
  config.oids.push_back(OidId(42));
  EXPECT_THROW(db_.SaveConfiguration(config), NotFoundError);
}

TEST_F(MetaDatabaseTest, ConfigurationNamesSorted) {
  Create("cpu", "hdl");
  Configuration b;
  b.name = "beta";
  db_.SaveConfiguration(b);
  Configuration a;
  a.name = "alpha";
  db_.SaveConfiguration(a);
  const auto names = db_.ConfigurationNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

TEST_F(MetaDatabaseTest, StatsCountLiveAndDead) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "schematic");
  db_.SetProperty(a, "p", "v");
  const LinkId link = db_.CreateLink(LinkKind::kDerive, a, b, {}, "", {});
  db_.DeleteLink(link);
  db_.DeleteObject(b);

  const DatabaseStats stats = db_.Stats();
  EXPECT_EQ(stats.live_objects, 1u);
  EXPECT_EQ(stats.dead_objects, 1u);
  EXPECT_EQ(stats.live_links, 0u);
  EXPECT_EQ(stats.dead_links, 1u);
  EXPECT_EQ(stats.property_values, 1u);
}

TEST_F(MetaDatabaseTest, ForEachSkipsDead) {
  const OidId a = Create("cpu", "hdl");
  const OidId b = Create("cpu", "schematic");
  db_.DeleteObject(a);
  size_t count = 0;
  db_.ForEachObject([&](OidId id, const MetaObject&) {
    EXPECT_EQ(id, b);
    ++count;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(MetaDatabaseTest, VersionContinuesAfterDeletingLatest) {
  Create("cpu", "hdl");
  const OidId v2 = Create("cpu", "hdl");
  db_.DeleteObject(v2);
  const OidId v3 = Create("cpu", "hdl");
  EXPECT_EQ(db_.GetObject(v3).oid.version, 3);
}

/// Chain-length sweep: version chains stay consistent at any length.
class VersionChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(VersionChainSweep, ChainInvariants) {
  MetaDatabase db;
  const int length = GetParam();
  for (int i = 0; i < length; ++i) {
    db.CreateNextVersion("blk", "view", "t", i);
  }
  const auto chain = db.VersionChain("blk", "view");
  ASSERT_EQ(chain.size(), static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    EXPECT_EQ(db.GetObject(chain[static_cast<size_t>(i)]).oid.version, i + 1);
    if (i > 0) {
      EXPECT_EQ(db.PreviousVersion(chain[static_cast<size_t>(i)]),
                chain[static_cast<size_t>(i - 1)]);
    }
  }
  EXPECT_EQ(db.FindLatest("blk", "view"), chain.back());
}

INSTANTIATE_TEST_SUITE_P(Lengths, VersionChainSweep,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace damocles::metadb
