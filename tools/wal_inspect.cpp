// wal-inspect: dump a WAL directory's segment headers, record counts,
// CRC verification results and truncation points.
//
//   wal_inspect [--json] <wal-dir>
//
// Prints the same report FormatWalInspection produces for the unit
// tests, followed by the checkpoint-manifest report (one line per
// manifest — kind, delta base, op-seq, db payload size — plus the
// base→tip chain recovery would load); --json switches to the
// machine-readable single-object form (FormatWalInspectionJson:
// segment headers, record counts and the torn-tail offset per stream).
// Exits 0 when every stream scans clean, 1 when any stream is torn
// (its report line shows where the intact prefix ends), 2 on usage
// errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "events/wal.hpp"
#include "metadb/recovery.hpp"

int main(int argc, char** argv) {
  bool json = false;
  const char* dir_arg = nullptr;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (dir_arg == nullptr) {
      dir_arg = argv[i];
    } else {
      usage_error = true;  // Too many positionals.
    }
  }
  if (dir_arg == nullptr || usage_error) {
    std::fprintf(stderr, "usage: wal_inspect [--json] <wal-dir>\n");
    return 2;
  }
  const std::string dir = dir_arg;
  try {
    bool any_torn = false;
    std::string report =
        json ? damocles::events::FormatWalInspectionJson(dir, &any_torn)
             : damocles::events::FormatWalInspection(dir, &any_torn);
    if (!json) {
      report += damocles::metadb::FormatWalCheckpointChains(dir);
    }
    std::fputs(report.c_str(), stdout);
    if (any_torn) return 1;  // CRC failure: report shows the torn offset.
  } catch (const damocles::Error& error) {
    std::fprintf(stderr, "wal_inspect: %s\n", error.what());
    return 2;
  }
  return 0;
}
