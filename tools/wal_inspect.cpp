// wal-inspect: dump a WAL directory's segment headers, record counts,
// CRC verification results and truncation points.
//
//   wal_inspect <wal-dir>
//
// Prints the same report FormatWalInspection produces for the unit
// tests. Exits 0 when every stream scans clean, 1 when any stream is
// torn (its report line shows where the intact prefix ends), 2 on
// usage errors.
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "events/wal.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: wal_inspect <wal-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  try {
    bool any_torn = false;
    const std::string report =
        damocles::events::FormatWalInspection(dir, &any_torn);
    std::fputs(report.c_str(), stdout);
    if (any_torn) return 1;  // CRC failure: report shows the torn offset.
  } catch (const damocles::Error& error) {
    std::fprintf(stderr, "wal_inspect: %s\n", error.what());
    return 2;
  }
  return 0;
}
